"""The :class:`Cluster` session façade: one spec in, one result out.

``Cluster.from_spec(spec)`` assembles the whole serving stack a
:class:`~repro.cluster.spec.ClusterSpec` describes — simulator, fleet
(with calibrated per-op cost models), scheduler core, admission,
optional block-store tier, fleet controller with the reconfiguration
schedule armed — and hands out client handles
(:meth:`Cluster.open_loop`, :meth:`Cluster.closed_loop`,
:meth:`Cluster.store_client`).  :meth:`Cluster.run` drives the
simulation to completion and returns the unified
:class:`~repro.cluster.result.RunResult`.

Device cost-model calibration runs the real codecs, so it is by far
the most expensive part of building a cluster; calibrated models are
cached process-wide keyed by (device kind, parameters, op) — a sweep
building hundreds of clusters from specs calibrates each distinct
device exactly once, same as the old hand-wired experiments that
hoisted ``calibrated(...)`` out of their loops.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ClusterError, ClusterSpecError, TelemetryError
from repro.hw.cpu import CpuSoftwareDevice
from repro.hw.dpzip import DpzipEngine
from repro.hw.engine import CdpuDevice
from repro.hw.qat import Qat4xxx, Qat8970
from repro.cluster.clients import (
    ClosedLoopClient,
    ClusterClient,
    OpenLoopClient,
    StoreClient,
)
from repro.cluster.result import RunResult
from repro.cluster.spec import ClusterSpec, DeviceSpec
from repro.profiling.powermeter import PowerMeter
from repro.service.admission import AdmissionController
from repro.service.control import FleetController
from repro.service.model import CostTable, DeviceCostModel
from repro.service.offload import OffloadService, build_fleet
from repro.service.request import OpenLoopStream, SloClass
from repro.sim.engine import Simulator
from repro.store.cache import BlockCache
from repro.store.store import CompressedBlockStore
from repro.telemetry import (
    DISABLED,
    ProfiledTelemetry,
    SloObjective,
    Telemetry,
    WallClockProfiler,
)
from repro.workloads.mixed import MixedStream

#: Maps each declarable device kind to its hw-layer constructor.
_DEVICE_BUILDERS: dict[str, Callable[[DeviceSpec], CdpuDevice]] = {
    "cpu": lambda spec: CpuSoftwareDevice(spec.algorithm,
                                          threads=spec.threads),
    "qat8970": lambda spec: Qat8970(),
    "qat4xxx": lambda spec: Qat4xxx(),
    "dpzip": lambda spec: DpzipEngine(),
}

#: Process-wide calibration cache: (DeviceSpec.cache_key(), op) -> model.
_MODEL_CACHE: dict[tuple, DeviceCostModel] = {}

#: Process-wide cost-table cache, keyed like :data:`_MODEL_CACHE`.
#: Identical fleet members share one table per op, so the per-size row
#: cache warms once for the whole fleet (and across sweep runs).
_TABLE_CACHE: dict[tuple, CostTable] = {}


def build_device(spec: DeviceSpec) -> CdpuDevice:
    """Construct the hw-layer device a :class:`DeviceSpec` names."""
    builder = _DEVICE_BUILDERS.get(spec.kind)
    if builder is None:
        raise ClusterSpecError(
            f"unknown device kind {spec.kind!r}; "
            f"known: {sorted(_DEVICE_BUILDERS)}"
        )
    device = builder(spec)
    if spec.name is not None:
        device.name = spec.name
    return device


def calibrated_models(spec: DeviceSpec, device: CdpuDevice,
                      ops: tuple[str, ...]) -> dict[str, DeviceCostModel]:
    """Per-op cost models for ``device``, via the process-wide cache."""
    models: dict[str, DeviceCostModel] = {}
    for op in ops:
        key = (spec.cache_key(), op)
        model = _MODEL_CACHE.get(key)
        if model is None:
            model = DeviceCostModel.calibrate(device, op=op)
            _MODEL_CACHE[key] = model
        models[op] = model
    return models


def calibrated_tables(spec: DeviceSpec, device: CdpuDevice,
                      ops: tuple[str, ...]) -> dict[str, CostTable]:
    """Per-op :class:`CostTable` lookups for ``device``, cached like
    :func:`calibrated_models` (one table per distinct device kind)."""
    tables: dict[str, CostTable] = {}
    for op, model in calibrated_models(spec, device, ops).items():
        key = (spec.cache_key(), op)
        table = _TABLE_CACHE.get(key)
        if table is None or table.model is not model:
            table = CostTable(model)
            _TABLE_CACHE[key] = table
        tables[op] = table
    return tables


class Cluster:
    """A live serving cluster: simulator, fleet, scheduler, clients.

    Build one from a spec (:meth:`from_spec`) or wrap pre-built parts
    (the constructor) — the latter is what the deprecated
    ``run_offload_service`` / ``run_block_store`` shims and the
    stub-device unit tests use.  Attach one or more clients, then call
    :meth:`run` exactly once.
    """

    def __init__(self, sim: Simulator, service: OffloadService,
                 store: CompressedBlockStore | None = None,
                 spec: ClusterSpec | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.sim = sim
        self.service = service
        self.store = store
        self.spec = spec
        self.controller = FleetController(service)
        if telemetry is None:
            telemetry = (Telemetry(spec.telemetry)
                         if spec is not None and spec.telemetry is not None
                         else DISABLED)
        self.telemetry = telemetry
        if telemetry.enabled:
            self._wire_telemetry()
        self._clients: list[ClusterClient] = []
        self._active_clients = 0
        self._ran = False
        self._profiler: WallClockProfiler | None = None

    def _wire_telemetry(self) -> None:
        """Hand the live telemetry sink to every instrumented component."""
        scheduler = self.service.scheduler
        scheduler.telemetry = self.telemetry
        for device in scheduler.devices:
            device.telemetry = self.telemetry
        if scheduler.spill_device is not None:
            scheduler.spill_device.telemetry = self.telemetry
        if self.store is not None:
            self.store.telemetry = self.telemetry

    def enable_profiling(self) -> WallClockProfiler:
        """Attribute host wall-clock to subsystems during :meth:`run`.

        Wires a :class:`WallClockProfiler` into the live objects:
        scheduler submission/dispatch/completion bills to
        ``scheduler``, store serving to ``store``, span recording and
        metrics sampling to ``telemetry``, and the event loop plus
        anything unclaimed to ``engine``.  Must be called before
        :meth:`run`; unprofiled runs execute exactly the unwrapped
        code.
        """
        if self._ran:
            raise ClusterError(
                "cluster already ran; enable profiling before run()"
            )
        if self._profiler is not None:
            return self._profiler
        profiler = WallClockProfiler()
        self._profiler = profiler
        if self.telemetry.tracing:
            # Telemetry is slotted — swap in the profiled subclass and
            # re-hand the sink to every instrumented component.
            self.telemetry = ProfiledTelemetry.wrapping(
                self.telemetry, profiler)
            self._wire_telemetry()
        if self.telemetry.metrics is not None:
            profiler.wrap(self.telemetry.metrics, "sample", "telemetry")
        scheduler = self.service.scheduler
        for attr in ("submit", "pump", "_record_completion"):
            profiler.wrap(scheduler, attr, "scheduler")
        if self.store is not None:
            profiler.wrap(self.store, "get", "store")
            profiler.wrap(self.store, "put", "store")
        return profiler

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: ClusterSpec,
                  *, sanitize: bool | None = None,
                  sim: Simulator | None = None,
                  telemetry: Telemetry | None = None) -> "Cluster":
        """Assemble simulator + fleet + scheduler (+ store) from a spec.

        ``sanitize=True`` builds the cluster on a
        :class:`~repro.analyzers.runtime.SanitizedSimulator`, which
        validates engine invariants while keeping results
        byte-identical; ``None`` (default) defers to the
        ``REPRO_SANITIZE`` environment variable.

        ``sim``/``telemetry`` let a federated session assemble several
        member clusters on one shared simulator and one (scoped)
        telemetry sink; standalone callers leave both ``None``.
        """
        if sim is None:
            if sanitize is None:
                from repro.analyzers.runtime import sanitize_from_env
                sanitize = sanitize_from_env()
            if sanitize:
                from repro.analyzers.runtime import SanitizedSimulator
                sim = SanitizedSimulator()
            else:
                sim = Simulator()
        fleet_spec = spec.fleet
        entries = []
        for device_spec in fleet_spec.devices:
            device = build_device(device_spec)
            entries.append((device, calibrated_models(
                device_spec, device, fleet_spec.ops)))
        spill = None
        if fleet_spec.spill is not None:
            device = build_device(fleet_spec.spill)
            spill = (device, calibrated_models(
                fleet_spec.spill, device, fleet_spec.ops))
        members, spill_member = build_fleet(
            sim, entries, spill,
            batch_size=fleet_spec.batch_size,
            batch_timeout_ns=fleet_spec.batch_timeout_ns,
            queue_limit=fleet_spec.queue_limit,
            fair_share_tenants=fleet_spec.fair_share_tenants,
        )
        # Calibration-table fast path: members built from a spec price
        # requests off shared precomputed tables (bit-identical to the
        # live models they wrap) instead of recomputing the linear fits
        # per candidate per request.
        for member, device_spec in zip(members, fleet_spec.devices):
            member.cost_tables = calibrated_tables(
                device_spec, member.device, fleet_spec.ops)
        if spill_member is not None and fleet_spec.spill is not None:
            spill_member.cost_tables = calibrated_tables(
                fleet_spec.spill, spill_member.device, fleet_spec.ops)
        admission = None
        if spec.admission is not None:
            admission = AdmissionController(
                spill_threshold=spec.admission.spill_threshold,
                shed_threshold=spec.admission.shed_threshold,
                ewma_alpha=spec.admission.ewma_alpha,
            )
        service = OffloadService(sim, members, spec.policy,
                                 admission=admission,
                                 spill_device=spill_member,
                                 pending_limit=spec.pending_limit)
        store = None
        if spec.store is not None:
            store_spec = spec.store
            store = CompressedBlockStore(
                sim, service,
                BlockCache(store_spec.cache_blocks, store_spec.ghost_blocks),
                block_bytes=store_spec.block_bytes,
                segment_bytes=store_spec.segment_bytes,
                read_slo=store_spec.read_slo.to_class(),
                write_slo=store_spec.write_slo.to_class(),
            )
        cluster = cls(sim, service, store=store, spec=spec,
                      telemetry=telemetry)
        cluster._arm_reconfiguration(spec)
        return cluster

    @classmethod
    def from_json(cls, text: str) -> "Cluster":
        return cls.from_spec(ClusterSpec.from_json(text))

    def _arm_reconfiguration(self, spec: ClusterSpec) -> None:
        if spec.power_budget_w is not None:
            self.controller.power_cap(spec.power_budget_w)
        for event in spec.reconfig:
            self.controller.at(event.at_ns, self._reconfig_action(event))

    def _reconfig_action(self, event) -> Callable[[], Any]:
        controller = self.controller
        if event.action == "brown-out":
            return lambda: controller.brown_out(event.device,
                                                event.speed_factor)
        if event.action == "restore":
            return lambda: controller.restore(event.device)
        if event.action == "unplug":
            return lambda: controller.unplug(event.device, drain=event.drain)
        return lambda: controller.power_cap(event.budget_w)

    # -- stream defaults -------------------------------------------------------

    def default_slo_mix(self) -> tuple[tuple[SloClass, float], ...] | None:
        """The spec's SLO mix as live ``(class, weight)`` pairs."""
        if self.spec is None or self.spec.slo_mix is None:
            return None
        return tuple((share.slo.to_class(), share.weight)
                     for share in self.spec.slo_mix)

    # -- client handles --------------------------------------------------------

    def _attach(self, client: ClusterClient) -> ClusterClient:
        if self._ran:
            raise ClusterError(
                "cluster already ran; build a new one for another run"
            )
        if any(existing.name == client.name for existing in self._clients):
            raise ClusterError(f"duplicate client name {client.name!r}")
        self._clients.append(client)
        return client

    def open_loop(self, stream: OpenLoopStream | None = None,
                  name: str = "open-loop",
                  **stream_kwargs) -> OpenLoopClient:
        """Attach an open-loop client.

        Pass a prebuilt :class:`OpenLoopStream`, or stream keyword
        arguments (``offered_gbps``, ``duration_ns``, ...); the latter
        default ``slo_mix`` to the spec's mix.
        """
        if stream is None:
            stream_kwargs.setdefault("slo_mix", self.default_slo_mix())
            stream = OpenLoopStream(**stream_kwargs)
        elif stream_kwargs:
            raise ClusterError(
                "pass either a stream or stream kwargs, not both"
            )
        client = OpenLoopClient(self.service, stream, name=name)
        self._attach(client)
        return client

    def closed_loop(self, *, window: int, duration_ns: float,
                    think_ns: float = 0.0,
                    name: str = "closed-loop",
                    slo: SloClass | None = None,
                    **client_kwargs) -> ClosedLoopClient:
        """Attach a closed-loop client with an in-flight window."""
        if slo is None:
            mix = self.default_slo_mix()
            # A single-entry spec mix is a class assignment; a larger
            # mix keeps the client's own default (per-connection draws
            # belong to the open-loop shape).
            if mix is not None and len(mix) == 1:
                slo = mix[0][0]
        if slo is not None:
            client_kwargs["slo"] = slo
        client = ClosedLoopClient(self.service, window=window,
                                  duration_ns=duration_ns,
                                  think_ns=think_ns, name=name,
                                  **client_kwargs)
        self._attach(client)
        return client

    def store_client(self, stream: MixedStream | None = None,
                     name: str = "store",
                     window: int | None = None,
                     think_ns: float | None = None,
                     **stream_kwargs) -> StoreClient:
        """Attach a mixed GET/PUT client to the block-store tier.

        ``window``/``think_ns`` select closed-loop serving (at most
        ``window`` operations in flight per connection); both default
        from the spec's ``store.client_window``/``client_think_ns``
        when the cluster was built from a spec declaring them.
        """
        if self.store is None:
            raise ClusterError(
                "this cluster has no block-store tier; add a 'store' "
                "section to the ClusterSpec"
            )
        if any(isinstance(client, StoreClient)
               for client in self._clients):
            # The store tier keeps one shared metrics block; a second
            # client would report fleet-wide totals as its own row.
            raise ClusterError(
                "the store tier already has a client; drive mixed "
                "traffic through one StoreClient per run"
            )
        store_spec = self.spec.store if self.spec is not None else None
        if window is None and store_spec is not None:
            window = store_spec.client_window
        if think_ns is None:
            think_ns = (store_spec.client_think_ns
                        if store_spec is not None else 0.0)
        if stream is None:
            stream_kwargs.setdefault("block_bytes", self.store.block_bytes)
            stream = MixedStream(**stream_kwargs)
        elif stream_kwargs:
            raise ClusterError(
                "pass either a stream or stream kwargs, not both"
            )
        client = StoreClient(self.store, stream, name=name,
                             window=window, think_ns=think_ns)
        self._attach(client)
        return client

    # -- running ---------------------------------------------------------------

    def _client_finished(self, client: ClusterClient) -> None:
        self._active_clients -= 1
        if self._active_clients == 0:
            # The last arrival stream has ended: flush partial batches
            # and arm drain mode so late dispatches keep flushing.
            self.service.flush()

    def run(self) -> RunResult:
        """Drive every attached client to completion and report.

        The measurement window (goodput accounting) is the longest
        client duration; backlog drained after the last client stops
        submitting completes but does not inflate goodput.
        """
        if self._ran:
            raise ClusterError(
                "cluster already ran; build a new one for another run"
            )
        if not self._clients:
            raise ClusterError(
                "no clients attached; call open_loop()/closed_loop()/"
                "store_client() before run()"
            )
        horizon = max(client.duration_ns for client in self._clients)
        metrics = self.telemetry.metrics
        if metrics is not None and metrics.interval_ns > horizon:
            raise TelemetryError(
                f"TelemetrySpec.metrics_interval_ns "
                f"({metrics.interval_ns:g} ns) exceeds the run horizon "
                f"({horizon:g} ns); no sample would ever be taken — "
                f"shorten the interval or lengthen the clients"
            )
        self._ran = True
        self.service.measure_until_ns = horizon
        if self.store is not None:
            self.store.measure_until_ns = horizon
        if metrics is not None:
            self._register_default_gauges()
            self.sim.spawn(self._metrics_sampler(horizon))
        self._active_clients = len(self._clients)
        profiler = self._profiler
        if profiler is not None:
            # ``engine`` owns the whole window; the wrapped
            # scheduler/store/telemetry sections carve their self-time
            # out of it, so the residual is the event loop proper.
            profiler.begin()
            profiler.push("engine")
        try:
            for client in self._clients:
                client.start(on_done=self._client_finished)
            self.sim.run()
            # Defensive: a timer-less batch config can strand
            # closed-loop windows on a partial batch; flush and keep
            # running as long as it makes progress.
            while self._active_clients > 0:
                before = self.sim.now
                self.service.flush()
                self.sim.run()
                if self.sim.now == before:
                    break
        finally:
            if profiler is not None:
                profiler.pop()
                profiler.end()
        # Sanitized runs audit waiter queues once the drain settles; a
        # plain Simulator has no finish() and skips this entirely.
        finish = getattr(self.sim, "finish", None)
        if finish is not None:
            finish()
        telemetry_report = None
        if self.telemetry.enabled:
            telemetry_report = self.telemetry.report()
            telemetry_report.horizon_ns = horizon
            telemetry_report.objectives = self._objectives()
            if profiler is not None:
                telemetry_report.host_sections = list(profiler.sections)
        return RunResult(
            duration_ns=horizon,
            service=self.service.report(duration_ns=horizon),
            store=(self.store.report(duration_ns=horizon)
                   if self.store is not None else None),
            clients=[client.row() for client in self._clients],
            telemetry=telemetry_report,
            wall_profile=(profiler.profile()
                          if profiler is not None else None),
        )

    # -- SLO objectives --------------------------------------------------------

    def _objectives(self) -> tuple[SloObjective, ...]:
        """Declared objectives plus the defaults this spec implies."""
        spec = self.spec
        declared: tuple[SloObjective, ...] = ()
        if spec is not None and spec.telemetry is not None:
            declared = spec.telemetry.objectives
        taken = {objective.name for objective in declared}
        defaults = [objective for objective in self._default_objectives()
                    if objective.name not in taken]
        return declared + tuple(defaults)

    def _default_objectives(self) -> list[SloObjective]:
        """Monitors every sampled run gets for free.

        Derived from the spec: an admission shed ceiling always, one
        deadline-miss budget per declared SLO class (the mix's, or the
        store tier's read/write classes), and a draw cap when the spec
        sets a power budget.  A declared objective with the same name
        wins.  All carry ``source="default"`` so a column that never
        materialises is an info finding, not a failure.
        """
        spec = self.spec
        objectives = [SloObjective(
            name="shed-ceiling", column="shed_rate", limit=0.0,
            budget=0.02, source="default",
            description="admission control sheds (almost) nothing",
        )]
        slo_names: list[str] = []
        if spec is not None and spec.slo_mix is not None:
            slo_names = [share.slo.name for share in spec.slo_mix]
        elif spec is not None and spec.store is not None:
            slo_names = [spec.store.read_slo.name,
                         spec.store.write_slo.name]
        for name in dict.fromkeys(slo_names):
            objectives.append(SloObjective(
                name=f"miss-{name}", column=f"miss_{name}", limit=0.1,
                budget=0.05, source="default",
                description=f"{name} deadline-miss rate under 10%",
            ))
        if spec is not None and spec.power_budget_w is not None:
            objectives.append(SloObjective(
                name="power-cap", column="power_w",
                limit=spec.power_budget_w, budget=0.02,
                source="default",
                description="fleet draw honors the power budget",
            ))
        return objectives

    # -- telemetry sampling ----------------------------------------------------

    def _metrics_sampler(self, horizon: float):
        """Tick the metrics registry until the measurement window ends.

        Bounded by ``horizon`` so the simulation's event queue still
        drains once the clients stop submitting.
        """
        registry = self.telemetry.metrics
        interval = registry.interval_ns
        while self.sim.now + interval <= horizon:
            yield self.sim.timeout(interval)
            registry.sample(self.sim.now)

    def _fleet_keyed(self) -> list[tuple[str, Any]]:
        """Every fleet member (spill last) with unique gauge keys."""
        scheduler = self.service.scheduler
        devices = list(scheduler.devices)
        if scheduler.spill_device is not None:
            devices.append(scheduler.spill_device)
        keyed: list[tuple[str, Any]] = []
        seen: dict[str, int] = {}
        for device in devices:
            count = seen.get(device.name, 0)
            seen[device.name] = count + 1
            key = device.name if count == 0 \
                else f"{device.name}#{count + 1}"
            keyed.append((key, device))
        return keyed

    def _register_default_gauges(self) -> None:
        """The standard serving time series every sampled run records."""
        registry = self.telemetry.metrics
        scheduler = self.service.scheduler
        metrics = scheduler.metrics
        registry.gauge("pending", lambda: float(scheduler.pending))
        registry.gauge("utilization", scheduler.utilization)
        registry.gauge("completed", lambda: float(metrics.completed))

        # Per-interval admission rates: fraction of the tick's arrivals
        # that spilled or shed (cumulative counters only ever average
        # away the overload transient the series exists to show).
        previous = {"offered": 0, "spilled": 0, "shed": 0}

        def admission_rates() -> dict:
            offered = metrics.offered - previous["offered"]
            spilled = metrics.spilled - previous["spilled"]
            shed = metrics.shed - previous["shed"]
            previous.update(offered=metrics.offered,
                            spilled=metrics.spilled, shed=metrics.shed)
            return {
                "spill_rate": spilled / offered if offered else 0.0,
                "shed_rate": shed / offered if offered else 0.0,
            }
        registry.multi(admission_rates)

        for key, device in self._fleet_keyed():
            registry.gauge(f"q_{key}",
                           lambda d=device: float(d.inflight))
            registry.gauge(f"util_{key}",
                           lambda d=device: d.inflight / d.queue_limit)

        def slo_miss_rates() -> dict:
            return {f"miss_{name}": stats.miss_rate
                    for name, stats in sorted(metrics.slo.items())}
        registry.multi(slo_miss_rates)

        if self.store is not None:
            cache = self.store.cache
            blockmap = self.store.blockmap
            registry.gauge("hit_rate", lambda: cache.hit_rate)
            registry.gauge("ghost_hit_rate",
                           lambda: cache.ghost_hit_rate)
            registry.gauge("garbage_bytes",
                           lambda: float(blockmap.garbage_bytes))

        meter = PowerMeter()
        fleet = [device for _, device in self._fleet_keyed()]
        registry.gauge("power_w", lambda: meter.fleet_draw_w(fleet))
