"""Unified cluster API: declarative specs, session façade, clients.

The canonical entry point for every serving-layer scenario:

>>> from repro.cluster import Cluster, default_cluster_spec
>>> cluster = Cluster.from_spec(default_cluster_spec())
>>> cluster.open_loop(offered_gbps=36.0, duration_ns=2e6)   # doctest: +SKIP
>>> result = cluster.run()                                  # doctest: +SKIP

A :class:`ClusterSpec` declares fleet composition, placement policy,
admission/EWMA, SLO mix, block-store geometry, power budget and a
reconfiguration schedule — and round-trips through JSON, so the same
cluster an experiment sweeps can be checked into a config file and
replayed with ``repro-experiment cluster --spec cluster.json``.  The
:class:`Cluster` session owns the simulator and hands out client
handles: open-loop streams, closed-loop windowed clients, and mixed
GET/PUT store clients.  Every run returns one unified
:class:`RunResult`.
"""

from repro.cluster.clients import (
    ClosedLoopClient,
    ClusterClient,
    OpenLoopClient,
    StoreClient,
)
from repro.cluster.result import RunResult
from repro.cluster.session import Cluster, build_device, calibrated_models
from repro.cluster.spec import (
    CALIBRATED_OPS,
    DEVICE_KINDS,
    RECONFIG_ACTIONS,
    AdmissionSpec,
    ClusterSpec,
    DeviceSpec,
    FleetSpec,
    ReconfigEvent,
    SloShare,
    SloSpec,
    StoreSpec,
    TelemetrySpec,
    default_cluster_spec,
)

__all__ = [
    "AdmissionSpec",
    "CALIBRATED_OPS",
    "ClosedLoopClient",
    "Cluster",
    "ClusterClient",
    "ClusterSpec",
    "DEVICE_KINDS",
    "DeviceSpec",
    "FleetSpec",
    "OpenLoopClient",
    "RECONFIG_ACTIONS",
    "ReconfigEvent",
    "RunResult",
    "SloShare",
    "SloSpec",
    "StoreClient",
    "StoreSpec",
    "TelemetrySpec",
    "build_device",
    "calibrated_models",
    "default_cluster_spec",
]
