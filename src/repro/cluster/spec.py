"""Declarative cluster description: typed, serializable, validating.

A :class:`ClusterSpec` is the single document describing a serving
cluster — fleet composition, placement policy, admission control, the
SLO mix, block-store geometry, a power budget and a reconfiguration
schedule.  It is what three PRs of experiments were hand-wiring one
free function at a time: the same stack, now written down once and
buildable from JSON (``repro-experiment cluster --spec cluster.json``).

Every spec type round-trips losslessly through ``to_dict`` /
``from_dict`` (and therefore JSON); deserialization is *strict* —
an unknown key raises :class:`~repro.errors.ClusterSpecError` naming
the offending key instead of being silently dropped, because a typo'd
knob that silently reverts to its default is a misconfiguration the
experiment sweep will never notice.

The spec layer is deliberately free of simulator state: building the
live objects (devices, scheduler, store, controller) from a spec is
:class:`~repro.cluster.session.Cluster`'s job.
"""

from __future__ import annotations

import copy
import json
import math
import re
from dataclasses import dataclass, fields, is_dataclass
from typing import Any

from repro.errors import ClusterSpecError

#: Device kinds a :class:`DeviceSpec` may name — one per placement
#: column of the paper's Figure 1 (the session layer maps each to its
#: :mod:`repro.hw` constructor).
DEVICE_KINDS = ("cpu", "qat8970", "qat4xxx", "dpzip")

#: Ops a fleet may calibrate cost models for.
CALIBRATED_OPS = ("compress", "decompress")

#: Reconfiguration actions a :class:`ReconfigEvent` may schedule.
RECONFIG_ACTIONS = ("brown-out", "restore", "unplug", "power-cap")


def _check_keys(cls: type, data: dict,
                error: type[Exception] = ClusterSpecError) -> None:
    """Reject unknown keys loudly instead of silently dropping them.

    ``error`` lets other spec layers (federation) reuse the contract
    while raising their own hierarchy.
    """
    if not isinstance(data, dict):
        raise error(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise error(
            f"unknown key(s) {unknown} for {cls.__name__}; "
            f"allowed: {sorted(allowed)}"
        )


def to_jsonable(value: Any) -> Any:
    """Recursively convert spec values into JSON-serializable shapes
    (dataclasses become dicts, tuples become lists, dict values are
    converted in place — override mappings may carry spec objects)."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, (tuple, list)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: to_jsonable(item) for key, item in value.items()}
    return value


# -- dotted-path overrides -----------------------------------------------------
#
# The sweep layer (:mod:`repro.sweep`) addresses individual knobs of a
# spec document by dotted path — ``store.cache_blocks``,
# ``fleet.devices[1].threads``, ``workload.offered_gbps`` — and
# resolves each grid point by setting those paths on the JSON-shaped
# dict before re-validating through ``from_dict``.  The grammar:
#
#   path     := segment ("." segment)*
#   segment  := name ("[" index "]")*
#
# Every addressed key must already exist in the document (``to_dict``
# emits every field, so any valid knob does); a typo'd segment raises
# :class:`ClusterSpecError` naming the full path and the segment that
# failed, instead of silently creating a key ``from_dict`` would then
# reject with less context.

_SEGMENT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)((?:\[[0-9]+\])*)$")


def parse_override_path(path: str) -> list[str | int]:
    """Split a dotted override path into dict keys and list indices."""
    if not isinstance(path, str) or not path:
        raise ClusterSpecError(f"override path must be a non-empty "
                               f"string, got {path!r}")
    steps: list[str | int] = []
    for segment in path.split("."):
        match = _SEGMENT_RE.match(segment)
        if match is None:
            raise ClusterSpecError(
                f"bad segment {segment!r} in override path {path!r}; "
                f"expected name or name[index]"
            )
        steps.append(match.group(1))
        for index in re.findall(r"\[([0-9]+)\]", match.group(2)):
            steps.append(int(index))
    return steps


def _describe_step(step: str | int) -> str:
    return f"index [{step}]" if isinstance(step, int) else f"key {step!r}"


def apply_override(data: dict, path: str, value: Any) -> None:
    """Set one dotted ``path`` to ``value`` inside a spec dict, in place.

    ``value`` is deep-copied before insertion: a later override may
    descend *into* an inserted subtree (``fleet.devices`` set by one
    sweep axis, ``fleet.devices[0].threads`` by another), and that
    must never mutate the caller's original object.

    Raises :class:`ClusterSpecError` naming ``path`` and the failing
    segment when the path addresses a key that does not exist, an index
    out of range, or tries to descend into a scalar/null.
    """
    value = copy.deepcopy(value)
    steps = parse_override_path(path)
    target: Any = data
    for position, step in enumerate(steps[:-1]):
        target = _descend(target, step, path)
        if not isinstance(target, (dict, list)):
            where = _join_steps(steps[:position + 1])
            raise ClusterSpecError(
                f"override path {path!r} descends into "
                f"{type(target).__name__} at {where!r}; only mappings "
                f"and lists can be traversed"
            )
    last = steps[-1]
    if isinstance(target, dict):
        if not isinstance(last, str) or last not in target:
            raise ClusterSpecError(
                f"override path {path!r} addresses unknown "
                f"{_describe_step(last)}; allowed here: {sorted(target)}"
            )
        target[last] = value
    elif isinstance(target, list):
        if not isinstance(last, int) or not 0 <= last < len(target):
            raise ClusterSpecError(
                f"override path {path!r} addresses {_describe_step(last)} "
                f"outside a list of length {len(target)}"
            )
        target[last] = value
    else:
        raise ClusterSpecError(
            f"override path {path!r} ends inside "
            f"{type(target).__name__}; nothing to set"
        )


def _descend(container: Any, step: str | int, path: str) -> Any:
    if isinstance(container, dict):
        if not isinstance(step, str) or step not in container:
            raise ClusterSpecError(
                f"override path {path!r} addresses unknown "
                f"{_describe_step(step)}; allowed here: {sorted(container)}"
            )
        return container[step]
    if isinstance(container, list):
        if not isinstance(step, int) or not 0 <= step < len(container):
            raise ClusterSpecError(
                f"override path {path!r} addresses {_describe_step(step)} "
                f"outside a list of length {len(container)}"
            )
        return container[step]
    raise ClusterSpecError(
        f"override path {path!r} descends into "
        f"{type(container).__name__} at {_describe_step(step)}; only "
        f"mappings and lists can be traversed"
    )


def _join_steps(steps: list[str | int]) -> str:
    joined = ""
    for step in steps:
        joined += f"[{step}]" if isinstance(step, int) \
            else (f".{step}" if joined else step)
    return joined


@dataclass(frozen=True)
class DeviceSpec:
    """One fleet member, named by device kind.

    ``name`` overrides the device's default name — required when a
    fleet carries two devices of the same kind, because the fleet
    builder rejects duplicate names.  ``algorithm``/``threads`` only
    apply to the ``cpu`` kind (the software baseline is parameterized;
    the ASIC models are fixed silicon).
    """

    kind: str
    name: str | None = None
    algorithm: str = "deflate"
    threads: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in DEVICE_KINDS:
            raise ClusterSpecError(
                f"unknown device kind {self.kind!r}; "
                f"known: {list(DEVICE_KINDS)}"
            )
        if self.threads is not None and self.threads < 1:
            raise ClusterSpecError(
                f"device {self.name or self.kind!r}: threads must be "
                f">= 1, got {self.threads}"
            )

    def cache_key(self) -> tuple:
        """Calibration-cache key: everything that affects device timing."""
        return (self.kind, self.algorithm, self.threads)

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceSpec":
        _check_keys(cls, data)
        return cls(
            kind=data.get("kind", ""),
            name=data.get("name"),
            algorithm=data.get("algorithm", "deflate"),
            threads=data.get("threads"),
        )


@dataclass(frozen=True)
class FleetSpec:
    """Fleet composition plus the shared submission-path knobs."""

    devices: tuple[DeviceSpec, ...]
    spill: DeviceSpec | None = None
    batch_size: int = 4
    batch_timeout_ns: float | None = 20_000.0
    queue_limit: int | None = None
    fair_share_tenants: int | None = None
    #: Which ops get calibrated cost models ("compress" alone for
    #: write-only serving; add "decompress" for mixed-op/store traffic).
    ops: tuple[str, ...] = ("compress",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "devices", tuple(self.devices))
        object.__setattr__(self, "ops", tuple(self.ops))
        if not self.devices:
            raise ClusterSpecError("fleet must contain at least one device")
        if self.batch_size < 1:
            raise ClusterSpecError(
                f"batch size must be >= 1, got {self.batch_size}"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ClusterSpecError(
                f"queue limit must be >= 1, got {self.queue_limit}"
            )
        unknown = sorted(set(self.ops) - set(CALIBRATED_OPS))
        if not self.ops or unknown:
            raise ClusterSpecError(
                f"fleet ops {list(self.ops)} invalid; "
                f"choose from {list(CALIBRATED_OPS)}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        _check_keys(cls, data)
        return cls(
            devices=tuple(DeviceSpec.from_dict(entry)
                          for entry in data.get("devices", ())),
            spill=(DeviceSpec.from_dict(data["spill"])
                   if data.get("spill") is not None else None),
            batch_size=data.get("batch_size", 4),
            batch_timeout_ns=data.get("batch_timeout_ns", 20_000.0),
            queue_limit=data.get("queue_limit"),
            fair_share_tenants=data.get("fair_share_tenants"),
            ops=tuple(data.get("ops", ("compress",))),
        )


@dataclass(frozen=True)
class AdmissionSpec:
    """Admission-control thresholds and EWMA smoothing."""

    spill_threshold: float = 0.70
    shed_threshold: float = 0.95
    ewma_alpha: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.spill_threshold <= self.shed_threshold:
            raise ClusterSpecError(
                f"need 0 <= spill ({self.spill_threshold}) <= "
                f"shed ({self.shed_threshold})"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ClusterSpecError(
                f"ewma_alpha {self.ewma_alpha} outside (0, 1]"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "AdmissionSpec":
        _check_keys(cls, data)
        return cls(
            spill_threshold=data.get("spill_threshold", 0.70),
            shed_threshold=data.get("shed_threshold", 0.95),
            ewma_alpha=data.get("ewma_alpha", 1.0),
        )


@dataclass(frozen=True)
class SloSpec:
    """One SLO class: priority tier plus relative deadline budget.

    ``deadline_ns`` may be ``inf`` (scavenger traffic with no deadline);
    Python's ``json`` round-trips that as the ``Infinity`` literal.
    """

    name: str
    tier: int
    deadline_ns: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterSpecError("SLO class needs a non-empty name")
        if self.tier < 0:
            raise ClusterSpecError(f"SLO tier must be >= 0, got {self.tier}")
        if not self.deadline_ns > 0:
            raise ClusterSpecError(
                f"SLO deadline must be > 0, got {self.deadline_ns}"
            )

    @classmethod
    def of(cls, name: str) -> "SloSpec":
        """Spec for one of the standard classes by name."""
        from repro.service.request import make_slo_class
        return cls.from_class(make_slo_class(name))

    @classmethod
    def from_class(cls, slo) -> "SloSpec":
        """Spec mirroring a :class:`~repro.service.request.SloClass`."""
        return cls(name=slo.name, tier=slo.tier, deadline_ns=slo.deadline_ns)

    def to_class(self):
        """The live :class:`~repro.service.request.SloClass`."""
        from repro.service.request import SloClass
        return SloClass(name=self.name, tier=self.tier,
                        deadline_ns=self.deadline_ns)

    @classmethod
    def from_dict(cls, data: dict | str) -> "SloSpec":
        # A bare string names one of the standard classes — the short
        # form for hand-written JSON specs.
        if isinstance(data, str):
            return cls.of(data)
        _check_keys(cls, data)
        return cls(
            name=data.get("name", ""),
            tier=data.get("tier", 0),
            deadline_ns=data.get("deadline_ns", math.inf),
        )


@dataclass(frozen=True)
class SloShare:
    """One weighted entry of an SLO mix."""

    slo: SloSpec
    weight: float

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ClusterSpecError(
                f"SLO-mix weight must be > 0, got {self.weight}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "SloShare":
        _check_keys(cls, data)
        if "slo" not in data:
            raise ClusterSpecError("SLO-mix entry needs an 'slo' key")
        return cls(slo=SloSpec.from_dict(data["slo"]),
                   weight=data.get("weight", 1.0))


@dataclass(frozen=True)
class StoreSpec:
    """Block-store geometry plus decompressed-block cache sizing.

    ``client_window``/``client_think_ns`` declare closed-loop store
    serving: a store client built from this spec keeps at most
    ``client_window`` operations in flight per connection and thinks
    ``client_think_ns`` between completions (``None`` window = the
    open-loop Poisson default).
    """

    block_bytes: int = 65536
    segment_bytes: int | None = None
    cache_blocks: int = 512
    ghost_blocks: int | None = None
    read_slo: SloSpec = SloSpec("interactive", tier=0,
                                deadline_ns=200_000.0)
    write_slo: SloSpec = SloSpec("throughput", tier=1,
                                 deadline_ns=2_000_000.0)
    client_window: int | None = None
    client_think_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ClusterSpecError(
                f"block size must be > 0, got {self.block_bytes}"
            )
        if self.segment_bytes is not None and self.segment_bytes <= 0:
            raise ClusterSpecError(
                f"segment size must be > 0, got {self.segment_bytes}"
            )
        if self.cache_blocks < 0:
            raise ClusterSpecError(
                f"cache size must be >= 0, got {self.cache_blocks}"
            )
        if self.client_window is not None and self.client_window < 1:
            raise ClusterSpecError(
                f"store client window must be >= 1, "
                f"got {self.client_window}"
            )
        if self.client_think_ns < 0:
            raise ClusterSpecError(
                f"store client think time must be >= 0, "
                f"got {self.client_think_ns}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "StoreSpec":
        _check_keys(cls, data)
        spec = cls()
        return cls(
            block_bytes=data.get("block_bytes", spec.block_bytes),
            segment_bytes=data.get("segment_bytes"),
            cache_blocks=data.get("cache_blocks", spec.cache_blocks),
            ghost_blocks=data.get("ghost_blocks"),
            read_slo=(SloSpec.from_dict(data["read_slo"])
                      if "read_slo" in data else spec.read_slo),
            write_slo=(SloSpec.from_dict(data["write_slo"])
                       if "write_slo" in data else spec.write_slo),
            client_window=data.get("client_window"),
            client_think_ns=data.get("client_think_ns", 0.0),
        )


@dataclass(frozen=True)
class ReconfigEvent:
    """One scheduled fleet-reconfiguration action.

    ``action`` is one of :data:`RECONFIG_ACTIONS`; ``device`` names the
    target fleet member (not used by ``power-cap``), ``speed_factor``
    parameterizes ``brown-out``, ``drain`` selects graceful vs yank for
    ``unplug``, and ``budget_w`` is the ``power-cap`` wattage budget.
    """

    at_ns: float
    action: str
    device: str | None = None
    speed_factor: float = 1.0
    drain: bool = True
    budget_w: float | None = None

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ClusterSpecError(
                f"reconfiguration time must be >= 0, got {self.at_ns}"
            )
        if self.action not in RECONFIG_ACTIONS:
            raise ClusterSpecError(
                f"unknown reconfiguration action {self.action!r}; "
                f"known: {list(RECONFIG_ACTIONS)}"
            )
        if self.action == "power-cap":
            if self.budget_w is None or self.budget_w <= 0:
                raise ClusterSpecError(
                    f"power-cap event needs budget_w > 0, "
                    f"got {self.budget_w}"
                )
        elif not self.device:
            raise ClusterSpecError(
                f"{self.action} event needs a target device name"
            )
        if self.action == "brown-out" and not 0.0 < self.speed_factor <= 1.0:
            raise ClusterSpecError(
                f"brown-out speed factor {self.speed_factor} outside (0, 1]"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "ReconfigEvent":
        _check_keys(cls, data)
        return cls(
            at_ns=data.get("at_ns", 0.0),
            action=data.get("action", ""),
            device=data.get("device"),
            speed_factor=data.get("speed_factor", 1.0),
            drain=data.get("drain", True),
            budget_w=data.get("budget_w"),
        )


@dataclass(frozen=True)
class TelemetrySpec:
    """What a cluster run records — and monitors — about itself.

    ``trace`` turns on per-request span recording into a bounded
    flight recorder of ``trace_capacity`` events (oldest dropped
    first); ``metrics_interval_ns`` enables time-series sampling of
    the metrics registry at that simulated-time period.  Both default
    off — a spec without a telemetry section runs the untouched
    zero-cost path.

    ``objectives`` declares SLO monitors
    (:class:`~repro.telemetry.analysis.SloObjective`) burn-rate-
    evaluated over the sampled series; they join the default monitors
    the session derives from the spec (shed ceiling, per-class miss
    budgets, the power cap) in ``RunResult.health()``.
    """

    trace: bool = False
    trace_capacity: int = 262_144
    metrics_interval_ns: float | None = None
    objectives: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "objectives", tuple(self.objectives))
        if self.trace_capacity < 1:
            raise ClusterSpecError(
                f"trace capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.metrics_interval_ns is not None \
                and not self.metrics_interval_ns > 0:
            raise ClusterSpecError(
                f"metrics interval must be > 0 ns, "
                f"got {self.metrics_interval_ns}"
            )
        names = [objective.name for objective in self.objectives]
        duplicates = sorted({name for name in names
                             if names.count(name) > 1})
        if duplicates:
            raise ClusterSpecError(
                f"duplicate SLO objective name(s) {duplicates}"
            )

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics_interval_ns is not None

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySpec":
        from repro.telemetry.analysis import SloObjective
        _check_keys(cls, data)
        return cls(
            trace=data.get("trace", False),
            trace_capacity=data.get("trace_capacity", 262_144),
            metrics_interval_ns=data.get("metrics_interval_ns"),
            objectives=tuple(SloObjective.from_dict(entry)
                             for entry in data.get("objectives", ())),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """The whole cluster, declaratively.

    ``slo_mix`` is the default mix clients built from keyword arguments
    draw request classes from (a client given an explicit stream keeps
    that stream's mix).  ``power_budget_w`` caps the fleet's active
    draw from t=0; ``reconfig`` schedules mid-run membership/derating
    events.  ``store`` attaches the compressed block-store tier.
    """

    fleet: FleetSpec
    policy: str = "cost-model"
    admission: AdmissionSpec | None = None
    pending_limit: int | None = None
    slo_mix: tuple[SloShare, ...] | None = None
    store: StoreSpec | None = None
    power_budget_w: float | None = None
    reconfig: tuple[ReconfigEvent, ...] = ()
    telemetry: TelemetrySpec | None = None

    def __post_init__(self) -> None:
        if self.slo_mix is not None:
            object.__setattr__(self, "slo_mix", tuple(self.slo_mix))
            if not self.slo_mix:
                raise ClusterSpecError("slo_mix must not be empty")
        object.__setattr__(self, "reconfig", tuple(self.reconfig))
        from repro.service.policy import POLICIES
        if self.policy not in POLICIES:
            raise ClusterSpecError(
                f"unknown dispatch policy {self.policy!r}; "
                f"valid policies: {sorted(POLICIES)}"
            )
        if self.pending_limit is not None and self.pending_limit < 0:
            raise ClusterSpecError(
                f"pending limit must be >= 0, got {self.pending_limit}"
            )
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ClusterSpecError(
                f"power budget must be > 0, got {self.power_budget_w}"
            )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-shaped dict (tuples become lists, specs become dicts)."""
        return to_jsonable(self)

    def with_overrides(self, overrides: dict[str, Any]) -> "ClusterSpec":
        """A copy with dotted-path ``overrides`` applied and re-validated.

        >>> spec = default_cluster_spec(store=True)
        >>> spec.with_overrides({"store.cache_blocks": 64}).store.cache_blocks
        64
        """
        data = self.to_dict()
        for path, value in overrides.items():
            apply_override(data, path, value)
        return ClusterSpec.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        _check_keys(cls, data)
        if "fleet" not in data:
            raise ClusterSpecError("cluster spec needs a 'fleet' section")
        return cls(
            fleet=FleetSpec.from_dict(data["fleet"]),
            policy=data.get("policy", "cost-model"),
            admission=(AdmissionSpec.from_dict(data["admission"])
                       if data.get("admission") is not None else None),
            pending_limit=data.get("pending_limit"),
            slo_mix=(tuple(SloShare.from_dict(entry)
                           for entry in data["slo_mix"])
                     if data.get("slo_mix") is not None else None),
            store=(StoreSpec.from_dict(data["store"])
                   if data.get("store") is not None else None),
            power_budget_w=data.get("power_budget_w"),
            reconfig=tuple(ReconfigEvent.from_dict(entry)
                           for entry in data.get("reconfig", ())),
            telemetry=(TelemetrySpec.from_dict(data["telemetry"])
                       if data.get("telemetry") is not None else None),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ClusterSpecError(f"cluster spec is not valid JSON: "
                                   f"{error}") from error
        return cls.from_dict(data)


def default_cluster_spec(policy: str = "cost-model",
                         spill: bool = True,
                         store: bool = False) -> ClusterSpec:
    """The paper's full placement mix as a spec: one device per
    Figure 1 column, a snappy CPU spill reserve, EWMA admission."""
    return ClusterSpec(
        fleet=FleetSpec(
            devices=(
                DeviceSpec("cpu"),
                DeviceSpec("qat8970"),
                DeviceSpec("qat4xxx"),
                DeviceSpec("dpzip"),
            ),
            spill=(DeviceSpec("cpu", algorithm="snappy", threads=16)
                   if spill else None),
            ops=("compress", "decompress") if store else ("compress",),
        ),
        policy=policy,
        admission=AdmissionSpec(spill_threshold=0.80, shed_threshold=0.97,
                                ewma_alpha=0.3),
        store=StoreSpec() if store else None,
    )
