"""Client handles a :class:`~repro.cluster.session.Cluster` hands out.

Three traffic shapes cover the serving regimes the paper's placements
are evaluated under:

* :class:`OpenLoopClient` — the arrival-rate-driven driver: requests
  arrive on a Poisson clock regardless of how the fleet is coping (the
  overload-revealing shape every sweep so far has used);
* :class:`ClosedLoopClient` — connection-level flow control: each
  client keeps at most ``window`` requests in flight and waits
  ``think_ns`` after every completion before submitting the next, so
  offered load *responds* to service latency the way a real
  application threadpool does (the shape the ROADMAP's oldest open
  item asked for);
* :class:`StoreClient` — mixed GET/PUT traffic against the compressed
  block-store tier, open-loop over a Zipfian block space by default,
  or windowed closed-loop (``window=N`` connections with think time)
  like :class:`ClosedLoopClient`.

Every client keeps its own latency recorder and goodput window, so a
run's :class:`~repro.cluster.result.RunResult` can report per-client
rows next to the fleet-wide service/store reports.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from repro.errors import ClusterError, StoreError
from repro.service.offload import OffloadService
from repro.service.request import (
    BEST_EFFORT,
    OffloadRequest,
    OpenLoopStream,
    SloClass,
)
from repro.sim.stats import LatencyRecorder
from repro.store.store import CompressedBlockStore
from repro.workloads.mixed import MixedStream
from repro.workloads.zipf import ScrambledZipfian


def _validate_window_args(name: str, window: int | None,
                          think_ns: float,
                          retry_backoff_ns: float) -> None:
    """Shared closed-loop knob validation (window may be None for
    clients where windowing is optional)."""
    if window is not None and window < 1:
        raise ClusterError(f"{name}: window must be >= 1, got {window}")
    if think_ns < 0:
        raise ClusterError(f"{name}: think time must be >= 0, "
                           f"got {think_ns}")
    if retry_backoff_ns <= 0:
        # A shed can fire its completion callback synchronously inside
        # submit(); retrying with no backoff would spin the connection
        # at one virtual instant forever when the fleet is saturated.
        raise ClusterError(f"{name}: retry backoff must be > 0, "
                           f"got {retry_backoff_ns}")


class ClusterClient:
    """Shared per-client accounting; subclasses drive the traffic."""

    mode = "client"

    def __init__(self, service: OffloadService, name: str,
                 duration_ns: float) -> None:
        if duration_ns <= 0:
            raise ClusterError(f"client duration must be > 0, "
                               f"got {duration_ns}")
        self.service = service
        self.sim = service.sim
        self.name = name
        self.duration_ns = duration_ns
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.completed_bytes = 0
        #: Bytes completed inside this client's own duration window.
        self.window_bytes = 0
        self.latency = LatencyRecorder()
        self._on_done = None

    def start(self, on_done=None) -> None:
        """Spawn this client's traffic processes on the simulator."""
        self._on_done = on_done
        self._spawn()

    def _spawn(self) -> None:
        raise NotImplementedError

    def _done(self) -> None:
        if self._on_done is not None:
            self._on_done(self)

    # -- windowed-connection machinery (clients that set window/think/
    # retry_backoff and _live_connections; shared so the store and
    # service closed-loop protocols cannot silently diverge) -----------------

    def _track_submit(self) -> None:
        self.submitted += 1
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)

    def _pace(self, outcome: str) -> Generator[Any, Any, None]:
        """Post-completion pacing: back off after a drop (a saturated
        fleet sheds synchronously, and an instant resubmit would freeze
        virtual time in a shed storm), think after a completion."""
        if outcome == "dropped":
            yield self.sim.timeout(self.retry_backoff_ns)
        elif self.think_ns > 0:
            yield self.sim.timeout(self.think_ns)

    def _connection_done(self) -> None:
        self._live_connections -= 1
        if self._live_connections == 0:
            self._done()

    # -- completion accounting -------------------------------------------------

    def _record_completion(self, request: OffloadRequest) -> None:
        self.completed += 1
        self.completed_bytes += request.nbytes
        self.latency.record(self.sim.now - request.arrival_ns)
        if self.sim.now <= self.duration_ns:
            self.window_bytes += request.nbytes

    @property
    def goodput_gbps(self) -> float:
        """Per-client goodput over the client's window (bytes/ns)."""
        return self.window_bytes / self.duration_ns

    def row(self) -> dict:
        """Flat per-client row for the unified RunResult."""
        summary = self.latency.summary_us()
        return {
            "client": self.name,
            "mode": self.mode,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "goodput_gbps": self.goodput_gbps,
            "p50_us": summary["p50_us"],
            "p99_us": summary["p99_us"],
        }


class OpenLoopClient(ClusterClient):
    """Drives an :class:`~repro.service.request.OpenLoopStream`.

    Arrivals follow the stream's Poisson clock whether or not the fleet
    keeps up — queueing delay and shedding are the signal, not a brake.
    """

    mode = "open-loop"

    def __init__(self, service: OffloadService, stream: OpenLoopStream,
                 name: str = "open-loop") -> None:
        super().__init__(service, name, stream.duration_ns)
        self.stream = stream

    def _spawn(self) -> None:
        self.sim.spawn(self._arrivals())

    def _arrivals(self) -> Generator[Any, Any, None]:
        # The hottest client loop in the repo (every open-loop request
        # passes through once): hoist the per-iteration lookups and use
        # bound methods for the hooks instead of constructing two
        # closures per request.
        stream = self.stream
        rng = stream.rng()
        sim = self.sim
        timeout = sim.timeout
        next_gap_ns = stream.next_gap_ns
        make_request = stream.make_request
        submit = self.service.submit
        complete = self._complete
        drop = self._drop
        duration_ns = stream.duration_ns
        diurnal = getattr(stream, "diurnal", None)
        if diurnal is not None:
            # Diurnal pacing (PopulationStream): divide each Poisson gap
            # by the rate factor at the instant the gap is drawn.  A
            # separate loop keeps the undecorated hot path byte-for-byte
            # identical for plain streams (golden sweeps pin it).
            rate_at = diurnal.rate_at
            while True:
                yield timeout(next_gap_ns(rng) / rate_at(sim.now))
                if sim.now >= duration_ns:
                    break
                self.submitted += 1
                submit(make_request(rng), on_complete=complete,
                       on_drop=drop)
            self._done()
            return
        while True:
            yield timeout(next_gap_ns(rng))
            if sim.now >= duration_ns:
                break
            self.submitted += 1
            submit(make_request(rng), on_complete=complete, on_drop=drop)
        self._done()

    def _complete(self, request: OffloadRequest, device, cost) -> None:
        self._record_completion(request)

    def _drop(self, request: OffloadRequest) -> None:
        self.failed += 1


class ClosedLoopClient(ClusterClient):
    """Windowed flow control: at most ``window`` requests in flight.

    The client models an application threadpool of ``window``
    connections.  Each connection submits one request, waits for its
    completion (or drop), thinks for ``think_ns``, and only then
    submits the next — so in-flight never exceeds the window and
    offered load self-throttles when the fleet slows down.  A dropped
    request waits ``retry_backoff_ns`` instead of the think time
    before the connection issues new work.  Per-client latency and
    goodput come out of the shared :class:`ClusterClient` accounting.
    """

    mode = "closed-loop"

    def __init__(self, service: OffloadService, *,
                 window: int,
                 duration_ns: float,
                 think_ns: float = 0.0,
                 retry_backoff_ns: float = 1_000.0,
                 tenant: int = 0,
                 request_sizes: tuple[int, ...] = (16384, 65536, 131072),
                 ratio_range: tuple[float, float] = (0.30, 1.0),
                 op: str = "compress",
                 slo: SloClass = BEST_EFFORT,
                 seed: int = 1234,
                 name: str = "closed-loop") -> None:
        super().__init__(service, name, duration_ns)
        _validate_window_args(name, window, think_ns, retry_backoff_ns)
        if not request_sizes:
            raise ClusterError(f"{name}: need at least one request size")
        self.window = window
        self.think_ns = think_ns
        self.retry_backoff_ns = retry_backoff_ns
        self.tenant = tenant
        self.request_sizes = tuple(request_sizes)
        self.ratio_range = ratio_range
        self.op = op
        self.slo = slo
        self.seed = seed
        self.inflight = 0
        self.peak_inflight = 0
        self._live_connections = 0

    def _spawn(self) -> None:
        self._live_connections = self.window
        for connection in range(self.window):
            self.sim.spawn(self._connection(
                random.Random(f"{self.seed}/{connection}/{self.name}")))

    def _make_request(self, rng: random.Random) -> OffloadRequest:
        low, high = self.ratio_range
        return OffloadRequest(
            tenant=self.tenant,
            nbytes=rng.choice(self.request_sizes),
            ratio=rng.uniform(low, high),
            op=self.op,
            slo=self.slo,
        )

    def _connection(self, rng: random.Random) -> Generator[Any, Any, None]:
        while self.sim.now < self.duration_ns:
            request = self._make_request(rng)
            finished = self.sim.event()
            self._track_submit()
            self.service.submit(
                request,
                on_complete=lambda req, dev, cost, finished=finished:
                    self._complete(req, finished),
                on_drop=lambda req, finished=finished:
                    self._drop(req, finished),
            )
            outcome = yield finished
            yield from self._pace(outcome)
        self._connection_done()

    def _complete(self, request: OffloadRequest, finished) -> None:
        self.inflight -= 1
        self._record_completion(request)
        finished.succeed("completed")

    def _drop(self, request: OffloadRequest, finished) -> None:
        self.inflight -= 1
        self.failed += 1
        finished.succeed("dropped")

    def row(self) -> dict:
        row = super().row()
        row["window"] = self.window
        row["peak_inflight"] = self.peak_inflight
        return row


class StoreClient(ClusterClient):
    """Drives mixed GET/PUT traffic against the block-store tier.

    Two serving shapes, selected by ``window``:

    * ``window=None`` (default) — open loop: operations arrive on the
      stream's Poisson clock whatever the store's latency looks like.
      Completion accounting lives in the store's own metrics (hit/miss
      split, coalescing); the client row reports op counts and the
      store-level goodput for its window.
    * ``window=N`` — closed loop: ``N`` connections each keep one
      operation in flight, wait for its completion (via the store's
      ``on_done`` hooks, so a coalesced read completes when the shared
      decompress lands), think ``think_ns``, then issue the next.  A
      dropped operation backs off ``retry_backoff_ns`` instead of the
      think time.  The stream still supplies the op mix, key
      popularity and duration; its ``offered_gbps`` is ignored because
      flow control sets the rate.  Per-op latency and goodput come out
      of the client's own accounting, mirroring
      :class:`ClosedLoopClient`.
    """

    mode = "store"

    def __init__(self, store: CompressedBlockStore, stream: MixedStream,
                 name: str = "store", preload: bool = True,
                 window: int | None = None,
                 think_ns: float = 0.0,
                 retry_backoff_ns: float = 1_000.0) -> None:
        super().__init__(store.service, name, stream.duration_ns)
        if stream.block_bytes != store.block_bytes:
            # StoreError, matching the store.drive() behaviour callers
            # of the deprecated run_block_store shim already handle.
            raise StoreError(
                f"{name}: stream block size {stream.block_bytes} != "
                f"store block size {store.block_bytes}"
            )
        _validate_window_args(name, window, think_ns, retry_backoff_ns)
        self.store = store
        self.stream = stream
        self.preload = preload
        self.window = window
        self.think_ns = think_ns
        self.retry_backoff_ns = retry_backoff_ns
        self.mode = "store" if window is None else "store-closed"
        self.reads = 0
        self.writes = 0
        self.inflight = 0
        self.peak_inflight = 0
        self._live_connections = 0

    def _spawn(self) -> None:
        if self.preload and len(self.store.blockmap) == 0:
            # Give every logical block an initial extent so reads
            # always resolve (same seeding rule as run_block_store).
            self.store.load(self.stream.blocks,
                            ratio_range=self.stream.ratio_range,
                            seed=self.stream.seed + 2)
        # The measurement horizon on the store is owned by Cluster.run
        # (the longest client duration), not reset per client.
        if self.window is None:
            self.sim.spawn(self._arrivals())
        else:
            self._live_connections = self.window
            for connection in range(self.window):
                self.sim.spawn(self._connection(connection))

    def _arrivals(self) -> Generator[Any, Any, None]:
        stream = self.stream
        rng = stream.rng()
        keys = stream.key_generator()
        while True:
            yield self.sim.timeout(stream.next_gap_ns(rng))
            if self.sim.now >= stream.duration_ns:
                break
            op = stream.make_op(rng, keys)
            self.submitted += 1
            if op.kind == "read":
                self.reads += 1
                self.store.get(op.block, op.tenant)
            else:
                self.writes += 1
                self.store.put(op.block, op.tenant, op.ratio)
        self._done()

    # -- closed-loop connections -----------------------------------------------

    def _connection(self, index: int) -> Generator[Any, Any, None]:
        stream = self.stream
        rng = random.Random(f"{stream.seed}/{index}/{self.name}")
        # String-derived key seed: integer offsets from stream.seed
        # would collide with the preload RNG (seed + 2) and the shared
        # open-loop key stream (seed + 1).
        keys = ScrambledZipfian(stream.blocks, theta=stream.zipf_theta,
                                seed=f"{stream.seed}/keys/{index}")
        while self.sim.now < self.duration_ns:
            op = stream.make_op(rng, keys)
            started = self.sim.now
            finished = self.sim.event()
            self._track_submit()

            def done(outcome: str, started=started, finished=finished):
                self.inflight -= 1
                if outcome == "completed":
                    self.completed += 1
                    self.latency.record(self.sim.now - started)
                    self.completed_bytes += self.stream.block_bytes
                    if self.sim.now <= self.duration_ns:
                        self.window_bytes += self.stream.block_bytes
                else:
                    self.failed += 1
                finished.succeed(outcome)

            if op.kind == "read":
                self.reads += 1
                self.store.get(op.block, op.tenant, on_done=done)
            else:
                self.writes += 1
                self.store.put(op.block, op.tenant, op.ratio, on_done=done)
            outcome = yield finished
            yield from self._pace(outcome)
        self._connection_done()

    @property
    def goodput_gbps(self) -> float:
        if self.window is not None:
            return self.window_bytes / self.duration_ns
        metrics = self.store.metrics
        return ((metrics.window_read_bytes + metrics.window_write_bytes)
                / self.duration_ns)

    def row(self) -> dict:
        if self.window is not None:
            row = super().row()
            row["window"] = self.window
            row["peak_inflight"] = self.peak_inflight
            return row
        summary = self.store.metrics.read_latency.summary_us()
        return {
            "client": self.name,
            "mode": self.mode,
            "submitted": self.submitted,
            "completed": self.store.metrics.reads + self.store.metrics.writes
            - self.store.metrics.failed_reads
            - self.store.metrics.failed_writes,
            "failed": (self.store.metrics.failed_reads
                       + self.store.metrics.failed_writes),
            "goodput_gbps": self.goodput_gbps,
            "p50_us": summary["p50_us"],
            "p99_us": summary["p99_us"],
        }
