"""Btrfs-like filesystem model (paper §5.3.2, Figure 16).

Captures the three Btrfs behaviours the paper measures:

* **asynchronous buffered-IO compression**: writes land in the page
  cache and are compressed during background writeback, with an extra
  memory copy on the QAT path (bounce buffers) — the write-throughput
  penalty of Finding 11;
* **mandatory checksumming** whenever compression is on;
* **128 KB maximum compressed extent size**: a 4 KB random read must
  fetch and decompress the whole extent — the read-amplification
  mechanism of Finding 9.  With in-storage compression the filesystem
  stores plain 4 KB blocks and the problem vanishes.

Data is stored for real: extents hold actual compressed payloads and
reads decompress them, so correctness is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.kv.hooks import CompressionHook, OffHook
from repro.errors import ConfigurationError

EXTENT_BYTES = 128 * 1024
BLOCK_BYTES = 4096


@dataclass
class FsOpCost:
    """Cost envelope of one filesystem operation."""

    foreground_ns: float = 0.0
    host_cpu_ns: float = 0.0
    accel_busy_ns: float = 0.0
    storage_read_bytes: int = 0
    storage_write_bytes: int = 0
    read_amplification: float = 0.0


@dataclass
class FsTimingModel:
    """Device and host path constants for the filesystem models."""

    device_write_gbps: float = 6.0
    device_read_base_ns: float = 80_000.0
    device_read_gbps: float = 2.8
    page_cache_copy_gbps: float = 11.0
    bounce_copy_gbps: float = 9.0     # extra QAT staging copy
    checksum_cycles_per_byte: float = 0.45
    cpu_ghz: float = 2.7
    metadata_flush_ns: float = 60_000.0
    #: Kernel writeback worker threads doing compression (kworkers).
    writeback_threads: int = 16
    #: Accelerator-assisted async compression serializes through the
    #: writeback queue (bounce buffers + kworker handoffs); this caps
    #: QAT-path Btrfs writes well below the device rate (Finding 11).
    async_accel_writeback_gbps: float = 3.0
    #: In-storage engine input-stream bound (None = not engine-bound).
    in_storage_engine_gbps: float | None = None


@dataclass
class _Extent:
    """One on-disk extent (compressed or plain)."""

    logical_offset: int
    logical_length: int
    payload: bytes
    compressed: bool


class BtrfsModel:
    """A single-file Btrfs-like volume with pluggable compression."""

    def __init__(self, hook: CompressionHook | None = None,
                 timing: FsTimingModel | None = None,
                 in_storage_device: bool = False,
                 device_write_ratio: float = 1.0) -> None:
        self.hook = hook or OffHook()
        self.timing = timing or FsTimingModel()
        #: True when the device compresses transparently (DP-CSD): the
        #: filesystem itself writes plain 4 KB blocks.
        self.in_storage_device = in_storage_device
        #: Physical fraction actually hitting NAND for in-storage devices.
        self.device_write_ratio = device_write_ratio
        self._extents: list[_Extent] = []
        self._file_bytes = 0

    # -- write path ------------------------------------------------------------

    def write(self, data: bytes) -> FsOpCost:
        """Append ``data``; compression happens in writeback context."""
        if not data:
            raise ConfigurationError("cannot write an empty buffer")
        timing = self.timing
        cost = FsOpCost()
        # Foreground: copy into the page cache, then the syscall returns.
        cost.foreground_ns += len(data) / timing.page_cache_copy_gbps
        cost.host_cpu_ns += len(data) / timing.page_cache_copy_gbps
        # Background writeback: per-extent compress + checksum + write.
        app_compressing = (not self.in_storage_device
                           and not isinstance(self.hook, OffHook))
        offset = self._file_bytes
        for start in range(0, len(data), EXTENT_BYTES):
            chunk = data[start:start + EXTENT_BYTES]
            if app_compressing:
                block = self.hook.compress_block(chunk)
                payload = block.stored_payload
                compressed = payload is not chunk
                cost.host_cpu_ns += block.host_cpu_ns
                cost.accel_busy_ns += block.accel_busy_ns
                if block.accel_busy_ns > 0:
                    # QAT path: bounce-buffer copy in and out.
                    bounce = (len(chunk) + len(payload)) / timing.bounce_copy_gbps
                    cost.host_cpu_ns += bounce
                # Compression forces checksumming of the extent.
                cost.host_cpu_ns += (len(chunk)
                                     * timing.checksum_cycles_per_byte
                                     / timing.cpu_ghz)
            else:
                payload = chunk
                compressed = False
            written = len(payload)
            if self.in_storage_device:
                written = int(written * self.device_write_ratio)
            cost.storage_write_bytes += written
            self._extents.append(_Extent(offset + start, len(chunk),
                                         payload, compressed))
        cost.host_cpu_ns += timing.metadata_flush_ns / 10.0
        self._file_bytes += len(data)
        return cost

    # -- read path ---------------------------------------------------------------

    def read(self, offset: int, length: int = BLOCK_BYTES
             ) -> tuple[bytes, FsOpCost]:
        """Random read; compressed extents are fetched whole."""
        timing = self.timing
        cost = FsOpCost()
        out = bytearray()
        remaining = length
        cursor = offset
        while remaining > 0:
            extent = self._find_extent(cursor)
            within = cursor - extent.logical_offset
            take = min(remaining, extent.logical_length - within)
            if extent.compressed:
                # Read amplification: the whole extent comes off the
                # device and is decompressed for any byte inside it.
                read_bytes = len(extent.payload)
                cost.foreground_ns += (timing.device_read_base_ns
                                       + read_bytes / timing.device_read_gbps)
                cost.storage_read_bytes += read_bytes
                data, block_cost = self.hook.decompress_block(extent.payload)
                cost.host_cpu_ns += block_cost.host_cpu_ns
                cost.accel_busy_ns += block_cost.accel_busy_ns
                cost.foreground_ns += (block_cost.host_cpu_ns
                                       + block_cost.accel_latency_ns)
                cost.read_amplification += read_bytes / max(take, 1)
            else:
                read_bytes = take
                base = timing.device_read_base_ns
                if self.in_storage_device:
                    # DP-CSD decompresses inline; ~5 us overhead total.
                    base += 5_000.0
                cost.foreground_ns += base + read_bytes / timing.device_read_gbps
                cost.storage_read_bytes += read_bytes
                data = extent.payload
                cost.read_amplification += 1.0
            out += data[within:within + take]
            cursor += take
            remaining -= take
        return bytes(out), cost

    def _find_extent(self, offset: int) -> _Extent:
        for extent in self._extents:
            if (extent.logical_offset <= offset
                    < extent.logical_offset + extent.logical_length):
                return extent
        raise ConfigurationError(f"offset {offset} beyond file end")

    # -- aggregate throughput model ------------------------------------------------

    def write_throughput_gbps(self, sample: FsOpCost,
                              sample_bytes: int) -> float:
        """Sustained buffered-write bandwidth for this configuration.

        The bottleneck is the slowest of: page-cache ingest, background
        compression (on ``writeback_threads`` kworkers or the
        accelerator), and the device write path.
        """
        timing = self.timing
        ingest = timing.page_cache_copy_gbps
        device = (timing.device_write_gbps
                  * sample_bytes / max(sample.storage_write_bytes, 1))
        bounds = [ingest, device]
        background_cpu = sample.host_cpu_ns - sample_bytes / ingest
        if background_cpu > 0:
            per_thread = sample_bytes / background_cpu
            bounds.append(per_thread * timing.writeback_threads)
        if sample.accel_busy_ns > 0:
            bounds.append(sample_bytes / sample.accel_busy_ns)
            if not self.in_storage_device:
                bounds.append(timing.async_accel_writeback_gbps)
        if self.in_storage_device and timing.in_storage_engine_gbps:
            bounds.append(timing.in_storage_engine_gbps)
        return min(bounds)

    @property
    def file_bytes(self) -> int:
        return self._file_bytes

    @property
    def stored_bytes(self) -> int:
        return sum(len(e.payload) for e in self._extents)
