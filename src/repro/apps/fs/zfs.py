"""ZFS-like filesystem model (paper §5.3.2, Figure 17).

ZFS compresses at *record* granularity and the record size is tunable
(4 KB - 128 KB), which is why the paper uses it for the block-size
latency sweep.  Reads fetch and decompress one record; updates are
read-modify-write at record granularity.  The latency-vs-recordsize
curves of Figure 17 come straight from these mechanisms:

* CPU Deflate latency grows steeply with record size (decompression is
  ~14 cycles/byte);
* QAT 8970 pays its PCIe round-trip regardless of size, so it only
  beats the CPU at large records;
* DP-CSD stores plain records and decompresses inline — near-OFF
  latency at every record size (Finding 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.fs.btrfs import FsOpCost, FsTimingModel
from repro.apps.kv.hooks import CompressionHook, OffHook
from repro.errors import ConfigurationError

RECORD_SIZES = [4096, 8192, 16384, 32768, 65536, 131072]


@dataclass
class _Record:
    payload: bytes
    compressed: bool
    logical_length: int


class ZfsModel:
    """A ZFS-like dataset with configurable recordsize."""

    def __init__(self, recordsize: int = 131072,
                 hook: CompressionHook | None = None,
                 timing: FsTimingModel | None = None,
                 in_storage_device: bool = False,
                 device_write_ratio: float = 1.0) -> None:
        if recordsize not in RECORD_SIZES:
            raise ConfigurationError(
                f"recordsize {recordsize} not in {RECORD_SIZES}"
            )
        self.recordsize = recordsize
        self.hook = hook or OffHook()
        self.timing = timing or FsTimingModel()
        self.in_storage_device = in_storage_device
        self.device_write_ratio = device_write_ratio
        self._records: dict[int, _Record] = {}

    def _app_compressing(self) -> bool:
        return (not self.in_storage_device
                and not isinstance(self.hook, OffHook))

    # -- write ------------------------------------------------------------------

    def write_record(self, index: int, data: bytes) -> FsOpCost:
        if len(data) != self.recordsize:
            raise ConfigurationError(
                f"record must be exactly {self.recordsize} bytes"
            )
        timing = self.timing
        cost = FsOpCost()
        if self._app_compressing():
            block = self.hook.compress_block(data)
            payload = block.stored_payload
            compressed = payload is not data
            cost.host_cpu_ns += block.host_cpu_ns
            cost.accel_busy_ns += block.accel_busy_ns
            cost.foreground_ns += (block.host_cpu_ns
                                   + block.accel_latency_ns)
            cost.host_cpu_ns += (len(data)
                                 * timing.checksum_cycles_per_byte
                                 / timing.cpu_ghz)
        else:
            payload = data
            compressed = False
        written = len(payload)
        if self.in_storage_device:
            written = int(written * self.device_write_ratio)
        cost.storage_write_bytes += written
        cost.foreground_ns += (written / timing.device_write_gbps
                               + timing.metadata_flush_ns / 20.0)
        self._records[index] = _Record(payload, compressed, len(data))
        return cost

    # -- read -------------------------------------------------------------------

    def read_record(self, index: int) -> tuple[bytes, FsOpCost]:
        record = self._records.get(index)
        if record is None:
            raise KeyError(f"record {index} not written")
        timing = self.timing
        cost = FsOpCost()
        read_bytes = len(record.payload)
        base = timing.device_read_base_ns
        if self.in_storage_device:
            base += 5_000.0  # inline decompression overhead (Finding 10)
        cost.foreground_ns += base + read_bytes / timing.device_read_gbps
        cost.storage_read_bytes += read_bytes
        if record.compressed:
            data, block_cost = self.hook.decompress_block(record.payload)
            cost.host_cpu_ns += block_cost.host_cpu_ns
            cost.accel_busy_ns += block_cost.accel_busy_ns
            cost.foreground_ns += (block_cost.host_cpu_ns
                                   + block_cost.accel_latency_ns)
        else:
            data = record.payload
        return data, cost

    def update_record(self, index: int, data: bytes) -> FsOpCost:
        """Read-modify-write one record (Figure 17b's op)."""
        _, read_cost = self.read_record(index)
        write_cost = self.write_record(index, data)
        return FsOpCost(
            foreground_ns=read_cost.foreground_ns + write_cost.foreground_ns,
            host_cpu_ns=read_cost.host_cpu_ns + write_cost.host_cpu_ns,
            accel_busy_ns=read_cost.accel_busy_ns + write_cost.accel_busy_ns,
            storage_read_bytes=read_cost.storage_read_bytes,
            storage_write_bytes=write_cost.storage_write_bytes,
        )

    @property
    def stored_bytes(self) -> int:
        return sum(len(r.payload) for r in self._records.values())

    @property
    def logical_bytes(self) -> int:
        return sum(r.logical_length for r in self._records.values())
