"""Filesystem substrates: Btrfs-like extents, ZFS-like records."""

from repro.apps.fs.btrfs import (
    BLOCK_BYTES,
    EXTENT_BYTES,
    BtrfsModel,
    FsOpCost,
    FsTimingModel,
)
from repro.apps.fs.zfs import RECORD_SIZES, ZfsModel

__all__ = [
    "BLOCK_BYTES",
    "BtrfsModel",
    "EXTENT_BYTES",
    "FsOpCost",
    "FsTimingModel",
    "RECORD_SIZES",
    "ZfsModel",
]
