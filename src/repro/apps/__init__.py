"""Application substrates: LSM key-value store and filesystems."""
