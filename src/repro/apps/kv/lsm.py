"""RocksDB-like LSM-tree store with pluggable compression (Figure 13).

A real (small-scale) LSM engine: puts go through the WAL into a
memtable; full memtables flush to L0 SSTables; leveled compaction with
a 10x size fan-out keeps the tree shallow.  Compression runs at SSTable
build time through a :class:`CompressionHook`, so the three integration
styles the paper contrasts fall out naturally:

* QAT/CPU hooks shrink the **logical** file size — each SSTable packs
  more user data, the tree is shallower, reads touch fewer levels
  (Finding 8);
* the in-storage hook leaves logical sizes unchanged — identical tree
  shape to OFF, compression only reduces physical NAND bytes.

Every operation returns an :class:`OpCost` with the host CPU time,
accelerator occupancy and storage traffic it generated; the YCSB
experiment layer turns those into closed-loop throughput curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.kv.hooks import CompressionHook, OffHook
from repro.apps.kv.memtable import MemTable
from repro.apps.kv.sstable import SSTable, iterate_entries
from repro.apps.kv.wal import WriteAheadLog
from repro.errors import ConfigurationError


@dataclass
class StorageTimingModel:
    """Device-side costs of the store's IO (NVMe SSD class)."""

    write_gbps: float = 6.0
    read_block_base_ns: float = 75_000.0
    read_gbps: float = 1.5
    index_read_ns: float = 28_000.0
    wal_append_gbps: float = 2.0
    wal_sync_ns: float = 5_000.0

    def block_read_ns(self, nbytes: int) -> float:
        return self.read_block_base_ns + nbytes / self.read_gbps

    def write_ns(self, nbytes: int) -> float:
        return nbytes / self.write_gbps


@dataclass
class OpCost:
    """Cost envelope of a single store operation."""

    foreground_ns: float = 0.0      # latency the client thread observes
    host_cpu_ns: float = 0.0        # host CPU work (fg + bg)
    accel_busy_ns: float = 0.0      # accelerator engine occupancy
    storage_read_bytes: int = 0
    storage_write_bytes: int = 0    # physical bytes to the device
    host_write_bytes: int = 0       # logical bytes crossing the host link
    blocks_read: int = 0
    tables_checked: int = 0
    found: bool = False


@dataclass
class TimingLedger:
    """Aggregated costs across a workload run."""

    ops: int = 0
    foreground_ns: float = 0.0
    host_cpu_ns: float = 0.0
    accel_busy_ns: float = 0.0
    background_ns: float = 0.0
    storage_read_bytes: int = 0
    storage_write_bytes: int = 0
    host_write_bytes: int = 0
    blocks_read: int = 0
    flushes: int = 0
    compactions: int = 0

    def absorb(self, cost: OpCost) -> None:
        self.ops += 1
        self.foreground_ns += cost.foreground_ns
        self.host_cpu_ns += cost.host_cpu_ns
        self.accel_busy_ns += cost.accel_busy_ns
        self.storage_read_bytes += cost.storage_read_bytes
        self.storage_write_bytes += cost.storage_write_bytes
        self.host_write_bytes += cost.host_write_bytes
        self.blocks_read += cost.blocks_read


def _range_search(level: list[SSTable], key: bytes) -> SSTable | None:
    """Find the (unique) table in a sorted level whose range covers key."""
    lo, hi = 0, len(level) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        table = level[mid]
        if key < table.first_key:
            hi = mid - 1
        elif key > table.last_key:
            lo = mid + 1
        else:
            return table
    return None


class LsmStore:
    """The store.  All sizes are logical (file) bytes."""

    def __init__(
        self,
        hook: CompressionHook | None = None,
        memtable_bytes: int = 256 * 1024,
        block_bytes: int = 8 * 1024,
        l0_compaction_trigger: int = 4,
        level_base_bytes: int = 1 * 1024 * 1024,
        level_fanout: int = 10,
        target_file_bytes: int = 512 * 1024,
        storage: StorageTimingModel | None = None,
    ) -> None:
        if level_fanout < 2:
            raise ConfigurationError("level_fanout must be >= 2")
        self.hook = hook or OffHook()
        self.memtable = MemTable(memtable_bytes)
        self.wal = WriteAheadLog()
        self.block_bytes = block_bytes
        self.l0_trigger = l0_compaction_trigger
        self.level_base_bytes = level_base_bytes
        self.level_fanout = level_fanout
        self.target_file_bytes = target_file_bytes
        self.storage = storage or StorageTimingModel()
        self.l0: list[SSTable] = []            # newest first
        self.levels: list[list[SSTable]] = []  # L1.. sorted, non-overlap
        self.ledger = TimingLedger()
        self._cold_indexes: set[int] = set()
        # Uncompressed-block cache (RocksDB block cache): LRU over
        # (table_id, block first_key) identities.
        self.block_cache_capacity = 256
        self._block_cache: dict[tuple[int, bytes], None] = {}

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> OpCost:
        cost = OpCost()
        wal_bytes = self.wal.append(key, value)
        cost.foreground_ns += (wal_bytes / self.storage.wal_append_gbps
                               + self.storage.wal_sync_ns)
        cost.storage_write_bytes += wal_bytes
        cost.host_write_bytes += wal_bytes
        cost.host_cpu_ns += 500.0  # memtable insert + encoding
        cost.foreground_ns += 500.0
        self.memtable.put(key, value)
        if self.memtable.is_full:
            self._flush(cost)
        self.ledger.absorb(cost)
        return cost

    def _flush(self, cost: OpCost) -> None:
        items = self.memtable.sorted_items()
        if not items:
            return
        table = SSTable.build(items, self.hook, self.block_bytes)
        self.memtable.clear()
        self.wal.reset()
        self.l0.insert(0, table)
        self._charge_build(table, cost)
        self.ledger.flushes += 1
        self._cold_indexes.discard(table.table_id)
        if len(self.l0) >= self.l0_trigger:
            self._compact_l0(cost)
        self._maybe_compact_levels(cost)

    def _charge_build(self, table: SSTable, cost: OpCost) -> None:
        report = table.report
        build_ns = (report.host_cpu_ns
                    + self.storage.write_ns(report.physical_bytes))
        cost.host_cpu_ns += report.host_cpu_ns
        cost.accel_busy_ns += report.accel_busy_ns
        cost.storage_write_bytes += report.physical_bytes
        cost.host_write_bytes += report.logical_bytes
        self.ledger.background_ns += build_ns

    # -- compaction -----------------------------------------------------------

    def _compact_l0(self, cost: OpCost) -> None:
        """Merge all of L0 with the overlapping part of L1."""
        sources = list(self.l0)
        self.l0.clear()
        l1 = self.levels[0] if self.levels else []
        low = min(t.first_key for t in sources)
        high = max(t.last_key for t in sources)
        overlapping = [t for t in l1 if not (t.last_key < low
                                             or t.first_key > high)]
        keep = [t for t in l1 if t not in overlapping]
        merged = self._merge_tables(sources + overlapping, cost)
        if not self.levels:
            self.levels.append([])
        self.levels[0] = sorted(keep + merged, key=lambda t: t.first_key)
        self.ledger.compactions += 1

    def _maybe_compact_levels(self, cost: OpCost) -> None:
        level = 0
        while level < len(self.levels):
            limit = self.level_base_bytes * (self.level_fanout ** level)
            size = sum(t.logical_bytes for t in self.levels[level])
            if size <= limit:
                level += 1
                continue
            # Push the first table down into the next level.
            victim = self.levels[level].pop(0)
            if level + 1 >= len(self.levels):
                self.levels.append([])
            below = self.levels[level + 1]
            overlapping = [t for t in below
                           if not (t.last_key < victim.first_key
                                   or t.first_key > victim.last_key)]
            keep = [t for t in below if t not in overlapping]
            merged = self._merge_tables([victim] + overlapping, cost)
            self.levels[level + 1] = sorted(keep + merged,
                                            key=lambda t: t.first_key)
            self.ledger.compactions += 1
            level += 1

    def _merge_tables(self, tables: list[SSTable],
                      cost: OpCost) -> list[SSTable]:
        """Read, merge-sort, and rewrite tables (newest wins)."""
        entries: dict[bytes, bytes] = {}
        for table in reversed(tables):  # oldest first; newest overwrites
            for block in table.blocks:
                if block.compressed:
                    raw, block_cost = self.hook.decompress_block(block.payload)
                    cost.host_cpu_ns += block_cost.host_cpu_ns
                    cost.accel_busy_ns += block_cost.accel_busy_ns
                else:
                    raw = block.payload
                read_ns = self.storage.block_read_ns(len(block.payload))
                self.ledger.background_ns += read_ns
                cost.storage_read_bytes += len(block.payload)
                for key, value in iterate_entries(raw):
                    entries[key] = value
        items = sorted(entries.items())
        out: list[SSTable] = []
        chunk: list[tuple[bytes, bytes]] = []
        chunk_bytes = 0
        for key, value in items:
            chunk.append((key, value))
            chunk_bytes += len(key) + len(value)
            if chunk_bytes >= self.target_file_bytes:
                table = SSTable.build(chunk, self.hook, self.block_bytes)
                self._charge_build(table, cost)
                out.append(table)
                chunk = []
                chunk_bytes = 0
        if chunk:
            table = SSTable.build(chunk, self.hook, self.block_bytes)
            self._charge_build(table, cost)
            out.append(table)
        return out

    # -- read path --------------------------------------------------------------

    def get(self, key: bytes) -> tuple[bytes | None, OpCost]:
        cost = OpCost()
        cost.host_cpu_ns += 300.0
        cost.foreground_ns += 300.0
        value = self.memtable.get(key)
        if value is not None:
            cost.found = True
            self.ledger.absorb(cost)
            return value, cost
        for table in self.l0:
            value = self._table_lookup(table, key, cost)
            if value is not None:
                cost.found = True
                self.ledger.absorb(cost)
                return value, cost
        for level in self.levels:
            table = _range_search(level, key)
            if table is None:
                continue
            value = self._table_lookup(table, key, cost)
            if value is not None:
                cost.found = True
                self.ledger.absorb(cost)
                return value, cost
        self.ledger.absorb(cost)
        return None, cost

    def _table_lookup(self, table: SSTable, key: bytes,
                      cost: OpCost) -> bytes | None:
        cost.tables_checked += 1
        if table.table_id in self._cold_indexes:
            # Index/filter block must be fetched from the device.
            cost.foreground_ns += self.storage.index_read_ns
            cost.storage_read_bytes += 4096
            self._cold_indexes.discard(table.table_id)
        if not table.may_contain(key):
            return None
        block = table.find_block(key)
        if block is None:
            return None
        cache_key = (table.table_id, block.first_key)
        if cache_key in self._block_cache:
            # Cache holds uncompressed blocks: no IO, no decompression.
            self._block_cache.pop(cache_key)
            self._block_cache[cache_key] = None  # refresh LRU position
            cost.host_cpu_ns += 1_200.0
            cost.foreground_ns += 1_200.0
            value, _ = table.get(key, self.hook)  # cost discarded: cached
            return value
        read_ns = self.storage.block_read_ns(len(block.payload))
        cost.foreground_ns += read_ns
        cost.storage_read_bytes += len(block.payload)
        cost.blocks_read += 1
        value, block_cost = table.get(key, self.hook)
        if block_cost is not None:
            cost.host_cpu_ns += block_cost.host_cpu_ns
            cost.accel_busy_ns += block_cost.accel_busy_ns
            cost.foreground_ns += (block_cost.host_cpu_ns
                                   + block_cost.accel_latency_ns)
        self._block_cache[cache_key] = None
        while len(self._block_cache) > self.block_cache_capacity:
            self._block_cache.pop(next(iter(self._block_cache)))
        return value

    # -- maintenance --------------------------------------------------------------

    def flush_page_cache(self) -> None:
        """Mark every table's index cold and drop cached blocks (the
        paper's methodology: read latency sampled right after a cache
        flush)."""
        self._block_cache.clear()
        for table in self.l0:
            self._cold_indexes.add(table.table_id)
        for level in self.levels:
            for table in level:
                self._cold_indexes.add(table.table_id)

    # -- introspection ---------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Levels holding data (L0 counts once when non-empty)."""
        depth = 1 if self.l0 else 0
        depth += sum(1 for level in self.levels if level)
        return depth

    @property
    def table_count(self) -> int:
        return len(self.l0) + sum(len(level) for level in self.levels)

    @property
    def logical_bytes(self) -> int:
        total = sum(t.logical_bytes for t in self.l0)
        total += sum(t.logical_bytes for level in self.levels for t in level)
        return total

    @property
    def physical_bytes(self) -> int:
        total = sum(t.physical_bytes for t in self.l0)
        total += sum(t.physical_bytes for level in self.levels for t in level)
        return total
