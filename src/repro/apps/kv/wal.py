"""Write-ahead log accounting (RocksDB's WAL).

The WAL is written uncompressed on the IO path before the memtable
accepts a put; its byte count feeds the storage-write budget of the
throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass

_RECORD_HEADER_BYTES = 11  # checksum + length + type, log-format style


@dataclass
class WriteAheadLog:
    """Byte accounting for the active WAL segment."""

    bytes_appended: int = 0
    records: int = 0
    syncs: int = 0

    def append(self, key: bytes, value: bytes) -> int:
        """Log one put; returns bytes appended."""
        nbytes = _RECORD_HEADER_BYTES + len(key) + len(value)
        self.bytes_appended += nbytes
        self.records += 1
        return nbytes

    def sync(self) -> None:
        self.syncs += 1

    def reset(self) -> None:
        """A memtable flush retires the segment."""
        self.bytes_appended = 0
        self.records = 0
