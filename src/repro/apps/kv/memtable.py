"""In-memory write buffer of the LSM store (RocksDB's MemTable)."""

from __future__ import annotations

from repro.errors import ConfigurationError


class MemTable:
    """Mutable sorted buffer; flushed to an SSTable when full."""

    def __init__(self, capacity_bytes: int = 256 * 1024) -> None:
        if capacity_bytes < 4096:
            raise ConfigurationError("memtable capacity too small")
        self.capacity_bytes = capacity_bytes
        self._entries: dict[bytes, bytes] = {}
        self.approximate_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        # RocksDB memtables are append-only (every version occupies
        # arena space until flush), so overwrites still consume budget —
        # this is what creates flush pressure under update workloads.
        self._entries[key] = value
        self.approximate_bytes += len(key) + len(value)

    def get(self, key: bytes) -> bytes | None:
        return self._entries.get(key)

    @property
    def is_full(self) -> bool:
        return self.approximate_bytes >= self.capacity_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def sorted_items(self) -> list[tuple[bytes, bytes]]:
        """Entries in key order, ready for SSTable construction."""
        return sorted(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()
        self.approximate_bytes = 0
