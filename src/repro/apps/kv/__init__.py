"""RocksDB-like LSM key-value store with pluggable compression."""

from repro.apps.kv.hooks import (
    BlockCost,
    CompressionHook,
    CpuDeflateHook,
    InStorageHook,
    OffHook,
    QatHook,
    make_hook,
)
from repro.apps.kv.lsm import LsmStore, OpCost, StorageTimingModel, TimingLedger
from repro.apps.kv.memtable import MemTable
from repro.apps.kv.sstable import SSTable
from repro.apps.kv.wal import WriteAheadLog

__all__ = [
    "BlockCost",
    "CompressionHook",
    "CpuDeflateHook",
    "InStorageHook",
    "LsmStore",
    "MemTable",
    "OffHook",
    "OpCost",
    "QatHook",
    "SSTable",
    "StorageTimingModel",
    "TimingLedger",
    "WriteAheadLog",
    "make_hook",
]
