"""Immutable sorted-run files (RocksDB SSTables) with block compression.

An SSTable holds sorted key/value entries chopped into data blocks;
each block runs through the store's :class:`CompressionHook` at build
time (RocksDB's SSTable write path, Figure 13a).  File size is counted
in *logical* bytes — the hook decides whether compression shrinks that
(QAT/CPU) or only the physical footprint (in-storage).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.apps.kv.hooks import BlockCost, CompressionHook
from repro.errors import ConfigurationError


@dataclass
class DataBlock:
    """One compressed data block plus its index metadata."""

    first_key: bytes
    last_key: bytes
    payload: bytes          # as stored in the file (maybe compressed)
    entry_count: int
    uncompressed_bytes: int
    logical_bytes: int
    physical_bytes: int
    compressed: bool


@dataclass
class BuildReport:
    """Aggregate cost of constructing one SSTable."""

    host_cpu_ns: float = 0.0
    accel_busy_ns: float = 0.0
    logical_bytes: int = 0
    physical_bytes: int = 0
    uncompressed_bytes: int = 0
    blocks: int = 0


class SSTable:
    """Immutable sorted run with a sparse block index."""

    _sequence = 0

    def __init__(self, blocks: list[DataBlock], report: BuildReport) -> None:
        if not blocks:
            raise ConfigurationError("SSTable must hold at least one block")
        SSTable._sequence += 1
        self.table_id = SSTable._sequence
        self.blocks = blocks
        self.report = report
        self.first_key = blocks[0].first_key
        self.last_key = blocks[-1].last_key
        self._block_first_keys = [block.first_key for block in blocks]
        # Key membership filter (RocksDB bloom filter stand-in with a
        # deterministic ~1% false-positive emulation left to the reader
        # model; exact membership keeps the simulation honest).
        self._keys: set[bytes] = set()

    @classmethod
    def build(cls, items: list[tuple[bytes, bytes]],
              hook: CompressionHook,
              block_bytes: int = 16 * 1024) -> "SSTable":
        """Construct from sorted items, compressing block by block."""
        if not items:
            raise ConfigurationError("cannot build an empty SSTable")
        report = BuildReport()
        blocks: list[DataBlock] = []
        current: list[tuple[bytes, bytes]] = []
        current_bytes = 0

        def seal() -> None:
            nonlocal current, current_bytes
            if not current:
                return
            raw = _serialize_entries(current)
            cost: BlockCost = hook.compress_block(raw)
            compressed = cost.stored_payload is not raw
            blocks.append(DataBlock(
                first_key=current[0][0],
                last_key=current[-1][0],
                payload=cost.stored_payload,
                entry_count=len(current),
                uncompressed_bytes=len(raw),
                logical_bytes=cost.logical_bytes,
                physical_bytes=cost.physical_bytes,
                compressed=compressed,
            ))
            report.host_cpu_ns += cost.host_cpu_ns
            report.accel_busy_ns += cost.accel_busy_ns
            report.logical_bytes += cost.logical_bytes
            report.physical_bytes += cost.physical_bytes
            report.uncompressed_bytes += len(raw)
            report.blocks += 1
            current = []
            current_bytes = 0

        for key, value in items:
            current.append((key, value))
            current_bytes += len(key) + len(value) + 8
            if current_bytes >= block_bytes:
                seal()
        seal()
        table = cls(blocks, report)
        table._keys = {key for key, _ in items}
        return table

    @property
    def logical_bytes(self) -> int:
        return self.report.logical_bytes

    @property
    def physical_bytes(self) -> int:
        return self.report.physical_bytes

    @property
    def entry_count(self) -> int:
        return sum(block.entry_count for block in self.blocks)

    def key_in_range(self, key: bytes) -> bool:
        return self.first_key <= key <= self.last_key

    def may_contain(self, key: bytes) -> bool:
        """Bloom-filter check (exact membership here)."""
        return key in self._keys

    def find_block(self, key: bytes) -> DataBlock | None:
        """Locate the data block whose range covers ``key``."""
        if not self.key_in_range(key):
            return None
        index = bisect.bisect_right(self._block_first_keys, key) - 1
        if index < 0:
            return None
        block = self.blocks[index]
        if block.first_key <= key <= block.last_key:
            return block
        return None

    def get(self, key: bytes,
            hook: CompressionHook) -> tuple[bytes | None, BlockCost | None]:
        """Point lookup: find the block, decode it, scan the entries."""
        block = self.find_block(key)
        if block is None:
            return None, None
        if block.compressed:
            raw, cost = hook.decompress_block(block.payload)
        else:
            raw, cost = block.payload, BlockCost(
                stored_payload=block.payload,
                logical_bytes=block.logical_bytes,
                physical_bytes=block.physical_bytes,
            )
        value = _scan_entries(raw, key)
        return value, cost


def _serialize_entries(items: list[tuple[bytes, bytes]]) -> bytes:
    out = bytearray()
    for key, value in items:
        out += len(key).to_bytes(2, "little")
        out += len(value).to_bytes(4, "little")
        out += key
        out += value
    return bytes(out)


def _scan_entries(raw: bytes, key: bytes) -> bytes | None:
    pos = 0
    n = len(raw)
    while pos < n:
        klen = int.from_bytes(raw[pos:pos + 2], "little")
        vlen = int.from_bytes(raw[pos + 2:pos + 6], "little")
        pos += 6
        candidate = raw[pos:pos + klen]
        pos += klen
        if candidate == key:
            return raw[pos:pos + vlen]
        pos += vlen
    return None


def iterate_entries(raw: bytes):
    """Yield (key, value) pairs from a serialized block."""
    pos = 0
    n = len(raw)
    while pos < n:
        klen = int.from_bytes(raw[pos:pos + 2], "little")
        vlen = int.from_bytes(raw[pos + 2:pos + 6], "little")
        pos += 6
        key = raw[pos:pos + klen]
        pos += klen
        value = raw[pos:pos + vlen]
        pos += vlen
        yield key, value
