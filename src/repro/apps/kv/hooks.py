"""Compression hooks binding the LSM store to CDPU configurations.

The paper's Figure 13 contrast: QAT/CPU compression is **visible** to
RocksDB (SSTable blocks shrink, so each SSTable file holds more
user data and the LSM tree gets shallower), while DP-CSD compression is
**transparent** (SSTables keep their logical size; only the physical
footprint on flash shrinks).  Each hook reports how many *logical* and
*physical* bytes a block occupies plus where the compression time was
spent, which is exactly the split Findings 6/8 hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deflate import DeflateCodec
from repro.errors import ConfigurationError
from repro.hw.cpu import CpuSoftwareDevice
from repro.hw.qat import Qat4xxx, Qat8970


@dataclass
class BlockCost:
    """One block's size and timing outcome."""

    stored_payload: bytes       # what the SSTable file holds
    logical_bytes: int          # contribution to SSTable file size
    physical_bytes: int         # bytes that reach the storage medium
    host_cpu_ns: float = 0.0    # foreground/background host CPU time
    accel_busy_ns: float = 0.0  # accelerator engine occupancy
    accel_latency_ns: float = 0.0  # request latency seen by the caller


class CompressionHook:
    """Interface: compress/decompress one SSTable block."""

    name = "off"
    #: Accelerator concurrency ceiling (QAT's 64-process limit).
    concurrency_limit: int | None = None

    def compress_block(self, data: bytes) -> BlockCost:
        return BlockCost(stored_payload=data, logical_bytes=len(data),
                         physical_bytes=len(data))

    def decompress_block(self, payload: bytes) -> tuple[bytes, BlockCost]:
        return payload, BlockCost(stored_payload=payload,
                                  logical_bytes=len(payload),
                                  physical_bytes=len(payload))


class OffHook(CompressionHook):
    """No compression anywhere (the paper's OFF baseline)."""

    name = "off"


class CpuDeflateHook(CompressionHook):
    """Software Deflate level 1 on the host CPU."""

    name = "cpu-deflate"

    def __init__(self) -> None:
        self.codec = DeflateCodec(level=1)
        self.device = CpuSoftwareDevice("deflate", level=1)

    def compress_block(self, data: bytes) -> BlockCost:
        payload = self.codec.compress(data)
        cpu_ns = self.device.single_thread_ns(len(data))
        return BlockCost(stored_payload=payload,
                         logical_bytes=len(payload),
                         physical_bytes=len(payload),
                         host_cpu_ns=cpu_ns)

    def decompress_block(self, payload: bytes) -> tuple[bytes, BlockCost]:
        data = self.codec.decompress(payload)
        cpu_ns = self.device.single_thread_ns(len(data), decompress=True)
        return data, BlockCost(stored_payload=payload,
                               logical_bytes=len(payload),
                               physical_bytes=len(payload),
                               host_cpu_ns=cpu_ns)


class QatHook(CompressionHook):
    """QAT-accelerated Deflate (QATzip integration, Figure 13a)."""

    def __init__(self, generation: str) -> None:
        if generation == "8970":
            self.device = Qat8970()
        elif generation == "4xxx":
            self.device = Qat4xxx()
        else:
            raise ConfigurationError(f"unknown QAT generation {generation}")
        self.name = f"qat{generation}"
        self.concurrency_limit = self.device.queue_depth
        #: Submission/polling cost on the host per request (the driver
        #: busy-wait the paper blames for QAT's system power).
        self.host_submit_ns = 1500.0

    def compress_block(self, data: bytes) -> BlockCost:
        result = self.device.compress(data)
        return BlockCost(stored_payload=result.payload,
                         logical_bytes=len(result.payload),
                         physical_bytes=len(result.payload),
                         host_cpu_ns=self.host_submit_ns,
                         accel_busy_ns=result.engine_busy_ns,
                         accel_latency_ns=result.latency.total_ns)

    def decompress_block(self, payload: bytes) -> tuple[bytes, BlockCost]:
        result = self.device.decompress(payload)
        return result.payload, BlockCost(
            stored_payload=payload,
            logical_bytes=len(payload),
            physical_bytes=len(payload),
            host_cpu_ns=self.host_submit_ns,
            accel_busy_ns=result.engine_busy_ns,
            accel_latency_ns=result.latency.total_ns,
        )


class InStorageHook(CompressionHook):
    """Host-transparent in-storage compression (DP-CSD / CSD 2000).

    The application stores blocks *uncompressed* (logical size is
    unchanged — no LSM-shape benefit), while the device compresses on
    the write path so only ``physical_bytes`` hit NAND.
    """

    def __init__(self, name: str, device_ratio_codec=None,
                 engine_gbps: float = 14.0) -> None:
        self.name = name
        self._codec = device_ratio_codec or DeflateCodec(level=1)
        self._engine_gbps = engine_gbps

    def compress_block(self, data: bytes) -> BlockCost:
        physical = len(self._codec.compress(data))
        return BlockCost(stored_payload=data,
                         logical_bytes=len(data),
                         physical_bytes=min(physical, len(data)),
                         accel_busy_ns=len(data) / self._engine_gbps)

    def decompress_block(self, payload: bytes) -> tuple[bytes, BlockCost]:
        # Reads fetch the compressed image and inflate in-device; the
        # physical size was fixed at write time, so reads do not
        # re-estimate it (keeps the hot read path cheap).
        return payload, BlockCost(
            stored_payload=payload,
            logical_bytes=len(payload),
            physical_bytes=len(payload),
            accel_busy_ns=len(payload) / (self._engine_gbps * 1.4),
        )


def make_hook(config: str) -> CompressionHook:
    """Hook factory for the paper's six RocksDB configurations."""
    factories = {
        "off": OffHook,
        "cpu-deflate": CpuDeflateHook,
        "qat8970": lambda: QatHook("8970"),
        "qat4xxx": lambda: QatHook("4xxx"),
        "dpcsd": lambda: InStorageHook("dpcsd", engine_gbps=14.0),
        "csd2000": lambda: InStorageHook("csd2000", engine_gbps=2.2),
    }
    if config not in factories:
        raise ConfigurationError(
            f"unknown RocksDB config {config!r}; known: {sorted(factories)}"
        )
    return factories[config]()
