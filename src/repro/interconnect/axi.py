"""On-controller AXI path (in-storage CDPU attachment).

DPZip sits on the SSD controller's main interconnect next to the shared
buffer memory (paper Figure 3/4): data staged in on-chip SRAM streams
through the engine with no host round trips at all — the structural
reason in-storage placement wins on latency (Finding 4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AxiSpec:
    """Controller-internal bus parameters (PCIe 5.0-class SoC)."""

    base_ns: float = 120.0
    stream_gbps: float = 32.0
    burst_bytes: int = 256


class AxiPath:
    """Latency calculator for SBM <-> DPZip transfers."""

    def __init__(self, spec: AxiSpec | None = None) -> None:
        self.spec = spec or AxiSpec()
        self.bytes_moved = 0

    def transfer_ns(self, nbytes: int) -> float:
        """Stream ``nbytes`` between SBM and the engine."""
        self.bytes_moved += nbytes
        return self.spec.base_ns + nbytes / self.spec.stream_gbps

    def doorbell_ns(self) -> float:
        """Firmware-issued engine kick (register write)."""
        return 40.0

    def completion_ns(self) -> float:
        """Engine completion flag observed by firmware."""
        return 60.0
