"""PCIe link and DMA transaction model (peripheral CDPU path).

The paper measures QAT 8970's PCIe DMA read latency via SSD controller
memory buffer (CMB) experiments (Figure 11a): ~9.5 us at 1 KB rising to
~31.4 us at 64 KB — up to 70x the on-chip path.  The model decomposes a
DMA read into a fixed round-trip cost (descriptor fetch, non-posted read
handshaking, doorbell) plus streaming at an effective payload bandwidth,
which reproduces that curve within a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Effective per-lane payload bandwidth in GB/s (128b/130b signalling,
#: minus TLP header overheads).
_LANE_GBPS = {3: 0.985, 4: 1.969, 5: 3.938}


@dataclass
class PcieLinkSpec:
    """One PCIe endpoint attachment."""

    generation: int = 3
    lanes: int = 16
    #: Fixed round-trip cost of a device-initiated DMA read against
    #: host memory (descriptor + non-posted read completion chain).
    dma_read_base_ns: float = 9300.0
    #: Effective streaming bandwidth for device-initiated reads.  Far
    #: below the link peak because reads are round-trip limited
    #: (calibrated against the paper's CMB measurements).
    dma_read_stream_gbps: float = 3.0
    #: Posted writes pipeline much better than reads.
    dma_write_base_ns: float = 900.0
    mmio_doorbell_ns: float = 350.0
    interrupt_ns: float = 2000.0

    def __post_init__(self) -> None:
        if self.generation not in _LANE_GBPS:
            raise ConfigurationError(
                f"unsupported PCIe generation {self.generation}"
            )
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ConfigurationError(f"invalid lane count {self.lanes}")

    @property
    def link_bandwidth_gbps(self) -> float:
        """Peak payload bandwidth of the link in GB/s."""
        return _LANE_GBPS[self.generation] * self.lanes


class PcieLink:
    """Latency calculator for one device's PCIe attachment."""

    def __init__(self, spec: PcieLinkSpec | None = None) -> None:
        self.spec = spec or PcieLinkSpec()
        self.bytes_read = 0
        self.bytes_written = 0

    def dma_read_ns(self, nbytes: int) -> float:
        """Device reads ``nbytes`` from host memory (Figure 11a curve)."""
        self.bytes_read += nbytes
        stream = min(self.spec.dma_read_stream_gbps,
                     self.spec.link_bandwidth_gbps)
        return self.spec.dma_read_base_ns + nbytes / stream
    def dma_write_ns(self, nbytes: int) -> float:
        """Device writes ``nbytes`` to host memory (posted, pipelined)."""
        self.bytes_written += nbytes
        return self.spec.dma_write_base_ns + nbytes / self.spec.link_bandwidth_gbps

    def doorbell_ns(self) -> float:
        """Host MMIO write notifying the device of new work."""
        return self.spec.mmio_doorbell_ns

    def completion_ns(self) -> float:
        """Interrupt + ISR dispatch back to the host."""
        return self.spec.interrupt_ns


def qat8970_link() -> PcieLink:
    """QAT 8970's PCIe 3.0 x16 attachment (Table 1)."""
    return PcieLink(PcieLinkSpec(generation=3, lanes=16))


def dpcsd_link() -> PcieLink:
    """DP-CSD's PCIe 5.0 x4 attachment (Table 1).

    NVMe SSD controllers pipeline DMA aggressively; the base read cost
    is far below a QAT-style co-processor card's.
    """
    return PcieLink(PcieLinkSpec(
        generation=5, lanes=4,
        dma_read_base_ns=1100.0, dma_read_stream_gbps=12.0,
        dma_write_base_ns=450.0, interrupt_ns=1200.0,
    ))


def csd2000_link() -> PcieLink:
    """ScaleFlux CSD 2000's PCIe 3.0 x4 attachment (Table 1)."""
    return PcieLink(PcieLinkSpec(
        generation=3, lanes=4,
        dma_read_base_ns=2500.0, dma_read_stream_gbps=2.2,
        dma_write_base_ns=1200.0,
    ))
