"""Interconnect models: PCIe, coherent-mesh DDIO, controller AXI."""

from repro.interconnect.axi import AxiPath, AxiSpec
from repro.interconnect.ddio import DdioPath, DdioSpec
from repro.interconnect.pcie import (
    PcieLink,
    PcieLinkSpec,
    csd2000_link,
    dpcsd_link,
    qat8970_link,
)

__all__ = [
    "AxiPath",
    "AxiSpec",
    "DdioPath",
    "DdioSpec",
    "PcieLink",
    "PcieLinkSpec",
    "csd2000_link",
    "dpcsd_link",
    "qat8970_link",
]
