"""CMI/DDIO path model for on-chip CDPUs (QAT 4xxx).

On-chip accelerators sit on the CPU's coherent mesh (CMI) and use Intel
DDIO to exchange descriptors and payloads through the LLC, bypassing
DRAM (paper Figure 10).  The paper's telemetry shows 448 ns reads for
64 KB payloads — roughly 70x faster than the peripheral PCIe path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import LlcModel


@dataclass
class DdioSpec:
    """Coherent-mesh attachment parameters (calibrated to Fig. 11a)."""

    #: Fixed mesh traversal + CHA lookup cost for a DMA transaction.
    base_read_ns: float = 350.0
    base_write_ns: float = 250.0
    #: Effective LLC streaming bandwidth available to the accelerator.
    stream_gbps: float = 650.0
    #: Penalty multiplier when the payload misses LLC (DDIO miss ->
    #: DRAM round trip).
    miss_latency_ns: float = 110.0
    miss_stream_gbps: float = 96.0


class DdioPath:
    """Latency calculator for the on-chip accelerator's memory access."""

    def __init__(self, spec: DdioSpec | None = None,
                 llc: LlcModel | None = None) -> None:
        self.spec = spec or DdioSpec()
        self.llc = llc or LlcModel()
        self.bytes_read = 0
        self.bytes_written = 0

    def dma_read_ns(self, nbytes: int, llc_resident: bool = True) -> float:
        """Accelerator reads source data (448 ns for 64 KB when hot)."""
        self.bytes_read += nbytes
        if llc_resident:
            self.llc.hits += 1
            return self.spec.base_read_ns + nbytes / self.spec.stream_gbps
        self.llc.misses += 1
        return (self.spec.base_read_ns + self.spec.miss_latency_ns
                + nbytes / self.spec.miss_stream_gbps)

    def dma_write_ns(self, nbytes: int) -> float:
        """Accelerator writes results; DDIO allocates into LLC."""
        self.bytes_written += nbytes
        return self.spec.base_write_ns + nbytes / self.spec.stream_gbps

    def doorbell_ns(self) -> float:
        """Enqueue via ENQCMD-style ring notification on the mesh."""
        return 80.0

    def completion_ns(self) -> float:
        """Completion record + interrupt-less polling observation."""
        return 400.0
