"""Telemetry façade: one object the serving stack talks to.

Every instrumented component holds a :class:`Telemetry` — by default
the module-level :data:`DISABLED` singleton, whose ``tracing`` flag is
a plain ``False`` attribute.  Hot-path call sites guard with::

    tel = self.telemetry
    if tel.tracing:
        tel.span(...)

so a disabled run pays one attribute load and one branch per hook —
nothing else (asserted by ``benchmarks/test_bench_telemetry.py``).

Live :class:`Telemetry` objects hold gauge closures and are therefore
*not* shipped across the sweep worker pool; :meth:`Telemetry.report`
extracts a pure-data :class:`TelemetryReport` that pickles cleanly and
rides home on the :class:`~repro.cluster.result.RunResult`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import (
    TraceRecorder,
    render_trace,
    trace_document,
)


@dataclass(slots=True)
class TelemetryReport:
    """Pure-data snapshot of one run's telemetry (picklable).

    ``events`` are the raw flight-recorder tuples, ``metrics_rows``
    the sampled time series.  Everything downstream — trace export,
    metrics tables, health analysis, determinism comparisons —
    derives from this.  ``objectives``/``horizon_ns`` are stamped by
    the cluster session so burn-rate monitors evaluate identically in
    the parent and in sweep workers; ``host_sections`` are wall-clock
    profiler intervals exported as the trace's host-time track.
    """

    events: list = field(default_factory=list)
    recorded: int = 0
    dropped: int = 0
    tracing: bool = False
    metrics_rows: list[dict] = field(default_factory=list)
    interval_ns: float | None = None
    horizon_ns: float | None = None
    objectives: tuple = ()
    host_sections: list = field(default_factory=list)

    def alerts(self) -> list:
        """Fired SLO burn-rate alerts for the stamped objectives."""
        from repro.telemetry.analysis import evaluate_objectives
        return evaluate_objectives(self.metrics_rows, self.objectives,
                                   horizon_ns=self.horizon_ns)

    def trace_document(self) -> dict:
        """Chrome trace-event document (spans + metric counters +
        alert instants + the host-time track, when present)."""
        return trace_document(self.events, dropped=self.dropped,
                              metrics_rows=self.metrics_rows,
                              alerts=self.alerts(),
                              host_sections=self.host_sections)

    def trace_json(self) -> str:
        """The trace document as deterministic JSON text."""
        return render_trace(self.trace_document())

    def write_trace(self, path: str) -> str:
        """Write ``trace.json`` (Perfetto-openable) to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.trace_json())
        return path

    def metrics_json(self) -> str:
        """The sampled time series as deterministic JSON text."""
        return json.dumps(self.metrics_rows, sort_keys=True,
                          separators=(",", ":"))


class Telemetry:
    """Trace recorder + metrics registry behind one guard flag.

    Constructed from a :class:`~repro.cluster.spec.TelemetrySpec` (or
    bare keyword arguments in tests).  With neither tracing nor a
    metrics interval requested, the instance is inert: ``tracing`` is
    ``False``, ``metrics`` is ``None``, and ``enabled`` is ``False``.
    """

    __slots__ = ("tracing", "trace", "metrics", "_next_id")

    def __init__(self, spec=None, *, tracing: bool = False,
                 trace_capacity: int | None = None,
                 metrics_interval_ns: float | None = None) -> None:
        if spec is not None:
            tracing = spec.trace
            trace_capacity = spec.trace_capacity
            metrics_interval_ns = spec.metrics_interval_ns
        self.tracing = bool(tracing)
        self.trace = None
        if self.tracing:
            self.trace = TraceRecorder(trace_capacity) \
                if trace_capacity else TraceRecorder()
        self.metrics = None
        if metrics_interval_ns is not None:
            self.metrics = MetricsRegistry(metrics_interval_ns)
        self._next_id = 0

    @property
    def enabled(self) -> bool:
        return self.tracing or self.metrics is not None

    def next_id(self) -> int:
        """Fresh trace id; monotonic in submission order, so ids are
        deterministic for a given spec + seed regardless of workers."""
        self._next_id += 1
        return self._next_id

    # -- recording (call sites guard on ``tracing`` first) ---------------------

    def span(self, track: str, name: str, start_ns: float,
             end_ns: float, args: dict | None = None) -> None:
        self.trace.span(track, name, start_ns, end_ns, args)

    def instant(self, track: str, name: str, ts_ns: float,
                args: dict | None = None) -> None:
        self.trace.instant(track, name, ts_ns, args)

    # -- scoping ---------------------------------------------------------------

    def scoped(self, prefix: str) -> "Telemetry":
        """A view of this sink that prefixes every track with
        ``prefix/``.

        Federated sessions hand each member cluster a scoped view of
        the federation-level sink, so one merged trace carries every
        cluster's spans on disjoint ``<cluster>/<track>`` tracks.
        Disabled sinks scope to :data:`DISABLED` (nothing to prefix);
        ids and reports stay owned by the root.
        """
        if not self.enabled:
            return DISABLED
        return ScopedTelemetry(self, prefix)

    # -- extraction ------------------------------------------------------------

    def report(self) -> TelemetryReport:
        """Pure-data report of everything recorded so far."""
        return TelemetryReport(
            events=list(self.trace.events) if self.trace else [],
            recorded=self.trace.recorded if self.trace else 0,
            dropped=self.trace.dropped if self.trace else 0,
            tracing=self.tracing,
            metrics_rows=list(self.metrics.rows) if self.metrics else [],
            interval_ns=self.metrics.interval_ns if self.metrics else None,
        )


class ScopedTelemetry(Telemetry):
    """A track-prefixing view over a root :class:`Telemetry`.

    Shares the root's recorder, registry and id counter (ids stay
    globally monotonic across every scope), rewriting only the track
    names.  Build via :meth:`Telemetry.scoped`.
    """

    __slots__ = ("_root", "_prefix")

    def __init__(self, root: Telemetry, prefix: str) -> None:
        # Deliberately no super().__init__: every slot is aliased to
        # the root so the hot-path guards read the same flags.
        self._root = root
        self._prefix = f"{prefix}/"
        self.tracing = root.tracing
        self.trace = root.trace
        self.metrics = root.metrics

    def next_id(self) -> int:
        return self._root.next_id()

    def span(self, track: str, name: str, start_ns: float,
             end_ns: float, args: dict | None = None) -> None:
        self.trace.span(self._prefix + track, name, start_ns, end_ns,
                        args)

    def instant(self, track: str, name: str, ts_ns: float,
                args: dict | None = None) -> None:
        self.trace.instant(self._prefix + track, name, ts_ns, args)

    def scoped(self, prefix: str) -> "Telemetry":
        return self._root.scoped(f"{self._prefix}{prefix}")

    def report(self) -> TelemetryReport:
        return self._root.report()


#: Shared no-op instance every component defaults to.  Its ``tracing``
#: flag is permanently False and it owns no recorder or registry, so a
#: run without a TelemetrySpec records nothing and allocates nothing.
DISABLED = Telemetry()
