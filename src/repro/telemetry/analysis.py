"""Run-health analysis: SLO burn-rate monitors over the metrics series.

PR 6 gave runs raw telemetry — span chains and a sampled time series —
but nothing *interprets* it: a run shedding half its interactive
traffic looks exactly like a healthy one until a human opens the
Perfetto trace.  This module turns the raw data into verdicts:

* :class:`SloObjective` — one declarative service-level objective
  (deadline-miss budget, shed-rate ceiling, power cap, cache hit-rate
  floor, run-level p99 bound) bound to a metrics column;
* :func:`evaluate_objectives` — multi-window burn-rate evaluation in
  simulated time (the SRE-workbook discipline: an alert fires only
  when both a long and a short window burn the error budget faster
  than the window's factor), producing structured :class:`Alert`
  records that carry their evidence window;
* :func:`build_health` — the full :class:`HealthReport`: alerts plus
  scanners for saturation plateaus, shed bursts, cache-hit collapse
  and dropped-span data loss, folded into one pass/warn/fail verdict
  rendered as deterministic text or markdown.

Everything here is pure data → data: the same metrics rows and
objectives always produce byte-identical report text, so health
verdicts are comparable across sweep workers exactly like the trace
and metrics artifacts themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Sequence

from repro.errors import TelemetryError

#: Objective senses: "max" bounds the column from above (miss rate,
#: shed rate, power draw), "min" from below (cache hit rate).
OBJECTIVE_SENSES = ("max", "min")

#: Objective scopes: "series" objectives burn-rate-evaluate the sampled
#: metrics rows; "run" objectives check one column of the final merged
#: run row (p99_us, completed_gbps) against the limit once.
OBJECTIVE_SCOPES = ("series", "run")

#: Where an objective came from: "declared" objectives (spec/user) are
#: loud when their column never appears; "default" objectives (derived
#: from the cluster spec) degrade to an info finding instead.
OBJECTIVE_SOURCES = ("declared", "default")

#: Utilization level treated as a saturation plateau by the scanner.
SATURATION_LEVEL = 0.98

#: Consecutive saturated samples before the plateau scanner reports.
SATURATION_RUN = 3

#: Per-sample shed fraction that counts as a shed burst.
SHED_BURST_LEVEL = 0.05

#: A cache-hit collapse is a drop below this fraction of the running
#: peak hit rate (once the peak itself is meaningful).
CACHE_COLLAPSE_FRACTION = 0.5
CACHE_COLLAPSE_MIN_PEAK = 0.2


def _check_keys(cls: type, data: dict) -> None:
    """Strict deserialization, mirroring the cluster-spec discipline."""
    if not isinstance(data, dict):
        raise TelemetryError(
            f"{cls.__name__} expects a mapping, got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise TelemetryError(
            f"unknown key(s) {unknown} for {cls.__name__}; "
            f"allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One declarative objective over a telemetry column.

    ``column`` names a metrics-row column (``miss_interactive``,
    ``shed_rate``, ``power_w``, ``hit_rate``) for series scope, or a
    merged run-row column (``p99_us``) for run scope.  ``sense="max"``
    means the value must stay at or below ``limit``; ``"min"`` at or
    above.  ``budget`` is the error budget: the tolerated fraction of
    samples allowed to violate the limit over the whole run — burn
    rate is (violating fraction in a window) / budget.
    """

    name: str
    column: str
    limit: float
    sense: str = "max"
    budget: float = 0.01
    scope: str = "series"
    source: str = "declared"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("SLO objective needs a non-empty name")
        if not self.column:
            raise TelemetryError(
                f"SLO objective {self.name!r} needs a metrics column"
            )
        if self.sense not in OBJECTIVE_SENSES:
            raise TelemetryError(
                f"objective {self.name!r}: sense must be one of "
                f"{list(OBJECTIVE_SENSES)}, got {self.sense!r}"
            )
        if not 0.0 < self.budget <= 1.0:
            raise TelemetryError(
                f"objective {self.name!r}: budget must be in (0, 1], "
                f"got {self.budget}"
            )
        if self.scope not in OBJECTIVE_SCOPES:
            raise TelemetryError(
                f"objective {self.name!r}: scope must be one of "
                f"{list(OBJECTIVE_SCOPES)}, got {self.scope!r}"
            )
        if self.source not in OBJECTIVE_SOURCES:
            raise TelemetryError(
                f"objective {self.name!r}: source must be one of "
                f"{list(OBJECTIVE_SOURCES)}, got {self.source!r}"
            )

    def violated(self, value: float) -> bool:
        """Whether one observed ``value`` breaks the objective."""
        if self.sense == "max":
            return value > self.limit
        return value < self.limit

    def describe(self) -> str:
        relation = "<=" if self.sense == "max" else ">="
        text = f"{self.column} {relation} {self.limit:g}"
        if self.scope == "series":
            text += f" (budget {self.budget * 100:g}% of samples)"
        else:
            text += " (whole run)"
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "SloObjective":
        _check_keys(cls, data)
        return cls(
            name=data.get("name", ""),
            column=data.get("column", ""),
            limit=data.get("limit", 0.0),
            sense=data.get("sense", "max"),
            budget=data.get("budget", 0.01),
            scope=data.get("scope", "series"),
            source=data.get("source", "declared"),
            description=data.get("description", ""),
        )


@dataclass(frozen=True, slots=True)
class BurnWindow:
    """One (long, short) burn-rate window pair.

    Window lengths are fractions of the run horizon so the same policy
    scales from a 2 ms smoke run to a multi-second sweep point.  An
    alert fires at a sample only when both the long *and* the short
    window burn the budget at ``factor`` or faster — the long window
    provides significance, the short one proves the burn is current.
    """

    name: str
    long_frac: float
    short_frac: float
    factor: float
    severity: str

    def __post_init__(self) -> None:
        if not 0.0 < self.short_frac <= self.long_frac <= 1.0:
            raise TelemetryError(
                f"burn window {self.name!r}: need 0 < short_frac <= "
                f"long_frac <= 1, got {self.short_frac}/{self.long_frac}"
            )
        if self.factor <= 0:
            raise TelemetryError(
                f"burn window {self.name!r}: factor must be > 0, "
                f"got {self.factor}"
            )
        if self.severity not in ("page", "warn"):
            raise TelemetryError(
                f"burn window {self.name!r}: severity must be 'page' or "
                f"'warn', got {self.severity!r}"
            )


#: The default multi-window policy: a fast burn pages, a slow one warns.
DEFAULT_BURN_WINDOWS = (
    BurnWindow("fast", long_frac=0.10, short_frac=0.025,
               factor=10.0, severity="page"),
    BurnWindow("slow", long_frac=0.50, short_frac=0.125,
               factor=2.0, severity="warn"),
)


@dataclass(frozen=True, slots=True)
class Alert:
    """One fired burn-rate monitor, carrying its evidence window."""

    objective: str
    severity: str
    window: str
    burn_rate: float
    short_burn_rate: float
    window_start_ms: float
    window_end_ms: float
    worst_value: float
    limit: float

    def describe(self) -> str:
        return (
            f"[{self.severity}] {self.objective} {self.window}-burn "
            f"{self.burn_rate:.1f}x budget (short {self.short_burn_rate:.1f}x) "
            f"in [{self.window_start_ms:.3f}, {self.window_end_ms:.3f}] ms; "
            f"worst {self.worst_value:.4g} vs limit {self.limit:g}"
        )

    def trace_args(self) -> dict:
        """Structured args for the trace control-track instant."""
        return {
            "severity": self.severity,
            "window": self.window,
            "burn_rate": round(self.burn_rate, 3),
            "short_burn_rate": round(self.short_burn_rate, 3),
            "window_start_ms": round(self.window_start_ms, 6),
            "window_end_ms": round(self.window_end_ms, 6),
            "worst_value": round(self.worst_value, 6),
            "limit": self.limit,
        }


def _series(rows: Sequence[dict], column: str) -> list[tuple[float, float]]:
    """(t_ms, value) pairs for ``column``, skipping rows without it."""
    series = []
    for row in rows:
        value = row.get(column)
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and value == value:  # NaN-free
            series.append((row.get("t_ms", 0.0), float(value)))
    return series


def _window_burn(series: list[tuple[float, float]], end_index: int,
                 window_ms: float, objective: SloObjective) -> float:
    """Burn rate of ``objective`` over (t_end - window_ms, t_end]."""
    t_end = series[end_index][0]
    total = 0
    violating = 0
    for index in range(end_index, -1, -1):
        t, value = series[index]
        if t <= t_end - window_ms:
            break
        total += 1
        if objective.violated(value):
            violating += 1
    if total == 0:
        return 0.0
    return (violating / total) / objective.budget


def evaluate_objectives(
        rows: Sequence[dict],
        objectives: Iterable[SloObjective],
        horizon_ns: float | None = None,
        windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
        run_row: dict | None = None) -> list[Alert]:
    """Evaluate every objective, returning all fired alerts.

    Series objectives burn-rate-evaluate the sampled ``rows`` against
    each window pair; consecutive firing samples merge into one alert
    whose evidence window spans from the start of the long window at
    first firing to the last firing sample.  Run-scope objectives
    check ``run_row`` once.  Objectives whose column never appears are
    skipped here — :func:`build_health` reports them as findings.
    """
    rows = list(rows)
    if horizon_ns is not None and horizon_ns > 0:
        horizon_ms = horizon_ns / 1e6
    elif rows:
        horizon_ms = rows[-1].get("t_ms", 0.0)
    else:
        horizon_ms = 0.0
    alerts: list[Alert] = []
    for objective in objectives:
        if objective.scope == "run":
            alerts.extend(_evaluate_run_scope(objective, run_row))
            continue
        series = _series(rows, objective.column)
        if not series:
            continue
        for window in windows:
            alerts.extend(_evaluate_window(objective, series,
                                           horizon_ms, window))
    alerts.sort(key=lambda alert: (alert.window_start_ms,
                                   alert.objective, alert.window))
    return alerts


def _evaluate_run_scope(objective: SloObjective,
                        run_row: dict | None) -> list[Alert]:
    if run_row is None:
        return []
    value = run_row.get(objective.column)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return []
    if not objective.violated(float(value)):
        return []
    return [Alert(
        objective=objective.name,
        severity="page",
        window="run",
        burn_rate=1.0 / objective.budget,
        short_burn_rate=1.0 / objective.budget,
        window_start_ms=0.0,
        window_end_ms=0.0,
        worst_value=float(value),
        limit=objective.limit,
    )]


def _evaluate_window(objective: SloObjective,
                     series: list[tuple[float, float]],
                     horizon_ms: float,
                     window: BurnWindow) -> list[Alert]:
    long_ms = window.long_frac * horizon_ms
    short_ms = window.short_frac * horizon_ms
    if long_ms <= 0:
        return []
    alerts: list[Alert] = []
    region: dict | None = None
    for index, (t, _) in enumerate(series):
        if t < long_ms:
            # The long window is not yet fully inside the run; firing
            # off a single early sample would page on no evidence.
            continue
        long_burn = _window_burn(series, index, long_ms, objective)
        short_burn = _window_burn(series, index, short_ms, objective)
        firing = long_burn >= window.factor and short_burn >= window.factor
        if firing:
            worst = _worst_in(series, t - long_ms, t, objective)
            if region is None:
                region = {
                    "start_ms": max(t - long_ms, 0.0),
                    "end_ms": t,
                    "burn": long_burn,
                    "short": short_burn,
                    "worst": worst,
                }
            else:
                region["end_ms"] = t
                region["burn"] = max(region["burn"], long_burn)
                region["short"] = max(region["short"], short_burn)
                region["worst"] = _worse(region["worst"], worst, objective)
        elif region is not None:
            alerts.append(_region_alert(objective, window, region))
            region = None
    if region is not None:
        alerts.append(_region_alert(objective, window, region))
    return alerts


def _worst_in(series: list[tuple[float, float]], start_ms: float,
              end_ms: float, objective: SloObjective) -> float:
    values = [value for t, value in series if start_ms < t <= end_ms]
    if not values:
        return float("nan")
    return max(values) if objective.sense == "max" else min(values)


def _worse(a: float, b: float, objective: SloObjective) -> float:
    if a != a:
        return b
    if b != b:
        return a
    return max(a, b) if objective.sense == "max" else min(a, b)


def _region_alert(objective: SloObjective, window: BurnWindow,
                  region: dict) -> Alert:
    return Alert(
        objective=objective.name,
        severity=window.severity,
        window=window.name,
        burn_rate=region["burn"],
        short_burn_rate=region["short"],
        window_start_ms=region["start_ms"],
        window_end_ms=region["end_ms"],
        worst_value=region["worst"],
        limit=objective.limit,
    )


# -- health report -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Finding:
    """One health-scanner observation with its evidence window."""

    severity: str  # "info" | "warn" | "fail"
    kind: str
    message: str
    window_start_ms: float | None = None
    window_end_ms: float | None = None

    def describe(self) -> str:
        where = ""
        if self.window_start_ms is not None:
            where = (f" in [{self.window_start_ms:.3f}, "
                     f"{self.window_end_ms:.3f}] ms")
        return f"[{self.severity}] {self.kind}: {self.message}{where}"


_SEVERITY_RANK = {"info": 0, "warn": 1, "fail": 2}


@dataclass(slots=True)
class HealthReport:
    """One run's health verdict with the evidence that produced it."""

    verdict: str
    findings: list[Finding] = field(default_factory=list)
    alerts: list[Alert] = field(default_factory=list)
    objectives: tuple[SloObjective, ...] = ()
    samples: int = 0
    spans_recorded: int = 0
    spans_dropped: int = 0
    horizon_ms: float = 0.0

    def objective_verdict(self, name: str) -> str:
        """pass/warn/fail for one objective by name."""
        worst = "pass"
        for alert in self.alerts:
            if alert.objective != name:
                continue
            if alert.severity == "page":
                return "fail"
            worst = "warn"
        return worst

    def row(self) -> dict:
        """Flat columns for sweep tables."""
        return {"health": self.verdict, "alerts": len(self.alerts)}

    # -- rendering -------------------------------------------------------------

    def to_text(self) -> str:
        lines = [
            f"run health: {self.verdict.upper()} "
            f"({len(self.findings)} findings, {len(self.alerts)} alerts; "
            f"{self.samples} samples over {self.horizon_ms:.3f} ms, "
            f"{self.spans_recorded} spans recorded, "
            f"{self.spans_dropped} dropped)"
        ]
        if self.objectives:
            lines.append("objectives:")
            for objective in self.objectives:
                verdict = self.objective_verdict(objective.name)
                lines.append(f"  [{verdict}] {objective.name}: "
                             f"{objective.describe()}")
        if self.alerts:
            lines.append("alerts:")
            for alert in self.alerts:
                lines.append(f"  {alert.describe()}")
        if self.findings:
            lines.append("findings:")
            for finding in self.findings:
                lines.append(f"  {finding.describe()}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"## Run health: **{self.verdict.upper()}**",
            "",
            f"{self.samples} samples over {self.horizon_ms:.3f} ms; "
            f"{self.spans_recorded} spans recorded, "
            f"{self.spans_dropped} dropped.",
        ]
        if self.objectives:
            lines += ["", "### Objectives", "",
                      "| objective | target | verdict |",
                      "| --- | --- | --- |"]
            for objective in self.objectives:
                verdict = self.objective_verdict(objective.name)
                lines.append(f"| {objective.name} | "
                             f"`{objective.describe()}` | {verdict} |")
        if self.alerts:
            lines += ["", "### Alerts", ""]
            lines += [f"- {alert.describe()}" for alert in self.alerts]
        if self.findings:
            lines += ["", "### Findings", ""]
            lines += [f"- {finding.describe()}"
                      for finding in self.findings]
        return "\n".join(lines)


def _scan_saturation(rows: Sequence[dict]) -> list[Finding]:
    """Utilization plateaus: a device (or the fleet) pinned at the top."""
    if not rows:
        return []
    columns = sorted({
        key for row in rows for key in row
        if key == "utilization" or key.startswith("util_")
    })
    findings = []
    for column in columns:
        series = _series(rows, column)
        best: tuple[int, float, float] | None = None  # (length, start, end)
        run_start = None
        length = 0
        for t, value in series:
            if value >= SATURATION_LEVEL:
                if run_start is None:
                    run_start = t
                    length = 0
                length += 1
                if best is None or length > best[0]:
                    best = (length, run_start, t)
            else:
                run_start = None
        if best is not None and best[0] >= SATURATION_RUN:
            findings.append(Finding(
                severity="warn", kind="saturation",
                message=(f"{column} >= {SATURATION_LEVEL:g} for "
                         f"{best[0]} consecutive samples"),
                window_start_ms=best[1], window_end_ms=best[2],
            ))
    return findings


def _scan_shed_bursts(rows: Sequence[dict]) -> list[Finding]:
    """Intervals where a meaningful fraction of arrivals was shed."""
    series = _series(rows, "shed_rate")
    findings = []
    region = None
    peak = 0.0
    for t, value in series:
        if value >= SHED_BURST_LEVEL:
            if region is None:
                region = [t, t]
                peak = value
            else:
                region[1] = t
                peak = max(peak, value)
        elif region is not None:
            findings.append(Finding(
                severity="warn", kind="shed-burst",
                message=f"peak {peak * 100:.1f}% of arrivals shed",
                window_start_ms=region[0], window_end_ms=region[1],
            ))
            region = None
    if region is not None:
        findings.append(Finding(
            severity="warn", kind="shed-burst",
            message=f"peak {peak * 100:.1f}% of arrivals shed",
            window_start_ms=region[0], window_end_ms=region[1],
        ))
    return findings


def _scan_cache_collapse(rows: Sequence[dict]) -> list[Finding]:
    """A sustained hit-rate drop far below the warmed-up peak."""
    series = _series(rows, "hit_rate")
    peak = 0.0
    peak_t = 0.0
    for t, value in series:
        if value > peak:
            peak, peak_t = value, t
        elif peak >= CACHE_COLLAPSE_MIN_PEAK \
                and value < peak * CACHE_COLLAPSE_FRACTION:
            return [Finding(
                severity="warn", kind="cache-collapse",
                message=(f"hit rate fell to {value:.3f} from its "
                         f"{peak:.3f} peak"),
                window_start_ms=peak_t, window_end_ms=t,
            )]
    return []


def _scan_span_chains(events: Sequence[tuple],
                      dropped: int) -> list[Finding]:
    """Completed requests missing earlier phases despite zero drops."""
    findings = []
    if dropped > 0:
        return findings  # early spans legitimately overwritten
    phases: dict[int, set[str]] = {}
    for event in events:
        args = event[5]
        if isinstance(args, dict) and "req" in args:
            phases.setdefault(args["req"], set()).add(event[2])
    required = ("admit", "queue", "dispatch")
    broken = sorted(
        req for req, names in phases.items()
        if "complete" in names
        and any(name not in names for name in required)
    )
    if broken:
        findings.append(Finding(
            severity="fail", kind="span-gap",
            message=(f"{len(broken)} completed request(s) missing "
                     f"admit/queue/dispatch spans with zero drops "
                     f"(first: req {broken[0]})"),
        ))
    return findings


def build_health(metrics_rows: Sequence[dict], *,
                 horizon_ns: float | None = None,
                 objectives: Iterable[SloObjective] = (),
                 recorded: int = 0,
                 dropped: int = 0,
                 events: Sequence[tuple] = (),
                 run_row: dict | None = None,
                 windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
                 ) -> HealthReport:
    """Scan one run's telemetry into a :class:`HealthReport`.

    ``metrics_rows``/``events`` are the raw telemetry artifacts,
    ``objectives`` the monitors to burn-rate-evaluate, ``run_row`` the
    merged flat row (for run-scope objectives).  Verdict: any ``page``
    alert or ``fail`` finding fails the run; any ``warn`` demotes it
    to warn; otherwise it passes.
    """
    rows = list(metrics_rows)
    objectives = tuple(objectives)
    alerts = evaluate_objectives(rows, objectives, horizon_ns=horizon_ns,
                                 windows=windows, run_row=run_row)
    findings: list[Finding] = []
    columns = {key for row in rows for key in row}
    for objective in objectives:
        if objective.scope != "series" or objective.column in columns:
            continue
        if rows:
            severity = ("fail" if objective.source == "declared"
                        else "info")
            findings.append(Finding(
                severity=severity, kind="missing-column",
                message=(f"objective {objective.name!r} monitors "
                         f"column {objective.column!r}, which never "
                         f"appeared; sampled columns: "
                         f"{sorted(columns - {'t_ms'})}"),
            ))
    if not rows:
        findings.append(Finding(
            severity="info", kind="no-metrics",
            message=("no metrics series was sampled; declare "
                     "TelemetrySpec.metrics_interval_ns (or pass "
                     "--metrics-interval-ms) to enable SLO monitors"),
        ))
    findings.extend(_scan_saturation(rows))
    findings.extend(_scan_shed_bursts(rows))
    findings.extend(_scan_cache_collapse(rows))
    findings.extend(_scan_span_chains(events, dropped))
    if dropped > 0:
        findings.append(Finding(
            severity="warn", kind="span-loss",
            message=(f"{dropped} of {recorded} trace events fell out "
                     f"of the flight recorder; phase-chain analysis "
                     f"covers only the retained tail (raise "
                     f"TelemetrySpec.trace_capacity)"),
        ))
    verdict = "pass"
    if any(alert.severity == "page" for alert in alerts) \
            or any(f.severity == "fail" for f in findings):
        verdict = "fail"
    elif alerts or any(f.severity == "warn" for f in findings):
        verdict = "warn"
    findings.sort(key=lambda f: (-_SEVERITY_RANK[f.severity],
                                 f.window_start_ms or 0.0, f.kind))
    if horizon_ns is not None and horizon_ns > 0:
        horizon_ms = horizon_ns / 1e6
    else:
        horizon_ms = rows[-1].get("t_ms", 0.0) if rows else 0.0
    return HealthReport(
        verdict=verdict,
        findings=findings,
        alerts=alerts,
        objectives=objectives,
        samples=len(rows),
        spans_recorded=recorded,
        spans_dropped=dropped,
        horizon_ms=horizon_ms,
    )
