"""Host wall-clock profiler: where does real time go per subsystem?

The simulator's clock is virtual; this profiler measures the *host*
clock, attributing wall time to coarse subsystems — ``engine`` (the
event loop plus everything not otherwise claimed), ``scheduler``
(submission-path dispatch and completion bookkeeping), ``store``
(GET/PUT serving) and ``telemetry`` (span recording and metrics
sampling).  It is the measurement ROADMAP item 2 (hot-path speedup)
asks for before any refactor: know where the wall-clock goes, then
make it cheap.

Accounting is self-time on an explicit section stack: entering a
section starts its clock, entering a nested section pauses the
parent, so the per-subsystem totals are disjoint and sum to the
profiled window — which is what lets the exported host-time track sit
next to the simulated-time tracks in one Chrome trace without double
counting.

The profiler is strictly opt-in (``Cluster.enable_profiling()`` /
``--profile``): it wires itself in by wrapping bound methods on the
live objects, so an unprofiled run executes exactly the code it
always did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.core import Telemetry

#: Recorded host-span cap: totals are always complete, but only this
#: many individual section intervals are kept for the trace's host
#: track (the head of the run; the counter reports the rest).
HOST_SECTION_CAP = 4096


@dataclass(slots=True)
class WallClockProfile:
    """Pure-data profile summary surfaced on ``RunResult.wall_profile``."""

    total_s: float
    self_s: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    sections_recorded: int = 0
    sections_dropped: int = 0

    @property
    def attributed_s(self) -> float:
        """Wall seconds claimed by instrumented sections."""
        return sum(self.self_s.values())

    @property
    def coverage(self) -> float:
        """Attributed fraction of the profiled window (target >= 0.9)."""
        if self.total_s <= 0:
            return 0.0
        return self.attributed_s / self.total_s

    def rows(self) -> list[dict]:
        """Per-subsystem table rows, largest share first."""
        ordered = sorted(self.self_s.items(),
                         key=lambda item: (-item[1], item[0]))
        rows = [{
            "subsystem": name,
            "self_ms": seconds * 1e3,
            "share": seconds / self.total_s if self.total_s else 0.0,
            "calls": self.calls.get(name, 0),
        } for name, seconds in ordered]
        rows.append({
            "subsystem": "(total)",
            "self_ms": self.total_s * 1e3,
            "share": 1.0 if self.total_s else 0.0,
            "calls": sum(self.calls.values()),
        })
        return rows

    def to_text(self) -> str:
        from repro.profiling.report import format_table
        header = (f"wall-clock profile: {self.total_s * 1e3:.1f} ms "
                  f"measured, {self.attributed_s * 1e3:.1f} ms attributed "
                  f"({self.coverage * 100:.1f}% coverage)")
        return header + "\n" + format_table(self.rows(), floatfmt=".3f")


class WallClockProfiler:
    """Self-time section accounting over ``time.perf_counter_ns``.

    ``push(name)``/``pop()`` bracket a section; nested pushes pause the
    enclosing section.  ``begin()``/``end()`` bracket the whole
    profiled window (the run), which :meth:`profile` compares the
    attributed totals against.
    """

    __slots__ = ("_clock", "_stack", "self_ns", "calls", "sections",
                 "section_cap", "sections_dropped", "_origin",
                 "total_ns")

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns,
                 section_cap: int = HOST_SECTION_CAP) -> None:
        self._clock = clock
        self._stack: list[list] = []  # [name, start_ns, child_ns]
        self.self_ns: dict[str, int] = {}
        self.calls: dict[str, int] = {}
        #: Recorded (name, start_ns, dur_ns) intervals, relative to
        #: ``begin()``, for the trace's host-time track.
        self.sections: list[tuple[str, int, int]] = []
        self.section_cap = section_cap
        self.sections_dropped = 0
        self._origin: int | None = None
        self.total_ns = 0

    def begin(self) -> None:
        self._origin = self._clock()

    def end(self) -> None:
        if self._origin is None:
            return
        self.total_ns = self._clock() - self._origin

    def push(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0])

    def pop(self) -> None:
        name, start, child_ns = self._stack.pop()
        elapsed = self._clock() - start
        self.self_ns[name] = self.self_ns.get(name, 0) \
            + elapsed - child_ns
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += elapsed
        if len(self.sections) < self.section_cap:
            origin = self._origin if self._origin is not None else start
            self.sections.append((name, start - origin, elapsed))
        else:
            self.sections_dropped += 1

    def section(self, name: str, fn: Callable, *args, **kwargs):
        """Run ``fn`` inside a named section."""
        self.push(name)
        try:
            return fn(*args, **kwargs)
        finally:
            self.pop()

    def wrap(self, obj, attr: str, name: str) -> None:
        """Instance-wrap ``obj.attr`` so calls run inside ``name``."""
        fn = getattr(obj, attr)

        def wrapped(*args, **kwargs):
            self.push(name)
            try:
                return fn(*args, **kwargs)
            finally:
                self.pop()

        setattr(obj, attr, wrapped)

    def profile(self) -> WallClockProfile:
        """The pure-data summary of everything accounted so far."""
        return WallClockProfile(
            total_s=self.total_ns / 1e9,
            self_s={name: ns / 1e9
                    for name, ns in sorted(self.self_ns.items())},
            calls=dict(sorted(self.calls.items())),
            sections_recorded=len(self.sections),
            sections_dropped=self.sections_dropped,
        )


class ProfiledTelemetry(Telemetry):
    """A :class:`Telemetry` façade that bills span recording to the
    profiler's ``telemetry`` section.

    Swapped in by ``Cluster.enable_profiling()`` *instead of* wrapping
    the recorder: :class:`Telemetry` and its recorder are slotted, so
    per-instance monkeypatching is impossible — subclass override is
    the supported seam.
    """

    __slots__ = ("profiler",)

    @classmethod
    def wrapping(cls, telemetry: Telemetry,
                 profiler: WallClockProfiler) -> "ProfiledTelemetry":
        wrapped = cls.__new__(cls)
        wrapped.tracing = telemetry.tracing
        wrapped.trace = telemetry.trace
        wrapped.metrics = telemetry.metrics
        wrapped._next_id = telemetry._next_id
        wrapped.profiler = profiler
        return wrapped

    def span(self, track, name, start_ns, end_ns, args=None) -> None:
        profiler = self.profiler
        profiler.push("telemetry")
        try:
            self.trace.span(track, name, start_ns, end_ns, args)
        finally:
            profiler.pop()

    def instant(self, track, name, ts_ns, args=None) -> None:
        profiler = self.profiler
        profiler.push("telemetry")
        try:
            self.trace.instant(track, name, ts_ns, args)
        finally:
            profiler.pop()
