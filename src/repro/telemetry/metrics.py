"""Simulated-time metrics: counters, gauges, histograms, a registry.

The registry samples every registered instrument on a fixed
simulated-time interval (the sampler process lives in
:meth:`repro.cluster.session.Cluster.run`), producing one flat row per
tick.  Rows are plain dicts in insertion order, so the series prints
with :func:`repro.profiling.report.format_table`, exports to CSV, and
round-trips through the sweep worker pool unchanged.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import TelemetryError


class Counter:
    """Monotonic event count; sampling reports the running total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Log-bucketed distribution of non-negative observations.

    Buckets grow geometrically (factor 2 from ``least``), so a fixed,
    small bucket array covers nanoseconds through seconds.  Quantiles
    come from linear interpolation inside the matched bucket — coarse,
    but stable and allocation-free on the observe path.
    """

    __slots__ = ("name", "least", "counts", "count", "total")

    BUCKETS = 64

    def __init__(self, name: str, least: float = 1.0) -> None:
        if least <= 0:
            raise TelemetryError(
                f"histogram 'least' must be > 0, got {least}"
            )
        self.name = name
        self.least = least
        self.counts = [0] * self.BUCKETS
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise TelemetryError(
                f"histogram {self.name!r} observed negative value {value}"
            )
        index = 0 if value < self.least else min(
            int(math.log2(value / self.least)) + 1, self.BUCKETS - 1)
        self.counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, fraction: float) -> float:
        """Approximate ``fraction`` quantile (0..1); NaN when empty."""
        if not 0.0 <= fraction <= 1.0:
            raise TelemetryError(
                f"quantile fraction must be in [0, 1], got {fraction}"
            )
        if self.count == 0:
            return math.nan
        rank = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                low = 0.0 if index == 0 \
                    else self.least * (2.0 ** (index - 1))
                high = self.least * (2.0 ** index)
                inside = max(rank - seen, 0.0) / bucket_count
                return low + (high - low) * inside
            seen += bucket_count
        return self.least * (2.0 ** (self.BUCKETS - 1))


class MetricsRegistry:  # repro-lint: disable=HOT001 -- Cluster.enable_profiling shadows sample() with an instance attribute, which __slots__ forbids
    """Named instruments plus the sampled time series they produce.

    Gauges are zero-argument callables evaluated at each tick — the
    cheap hook points the serving stack exposes (queue depth, inflight
    count, cache hit rate) without telemetry code on the hot path.  A
    *multi* gauge returns a whole ``{column: value}`` dict per tick,
    for families whose membership is dynamic (per-SLO-class miss
    rates).  Registration order fixes column order, which keeps the
    exported series byte-stable across identical runs.
    """

    def __init__(self, interval_ns: float) -> None:
        if interval_ns <= 0:
            raise TelemetryError(
                f"metrics interval must be > 0 ns, got {interval_ns}"
            )
        self.interval_ns = interval_ns
        self.rows: list[dict] = []
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._multis: list[Callable[[], dict]] = []

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register ``fn`` to be sampled as column ``name``."""
        if name in self._gauges:
            raise TelemetryError(f"gauge {name!r} already registered")
        self._gauges[name] = fn

    def multi(self, fn: Callable[[], dict]) -> None:
        """Register a gauge that contributes several columns per tick."""
        self._multis.append(fn)

    def sample(self, now_ns: float) -> dict:
        """Evaluate every instrument into one row stamped ``now_ns``."""
        row: dict = {"t_ms": now_ns / 1e6}
        for name, fn in self._gauges.items():
            row[name] = fn()
        for fn in self._multis:
            for key, value in fn().items():
                row[key] = value
        for name, counter in self._counters.items():
            row[name] = counter.value
        self.rows.append(row)
        return row
