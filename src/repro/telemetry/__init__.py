"""repro.telemetry — request tracing, metrics, and run-health analysis.

Spans and instants land in a bounded flight recorder and export as
Chrome/Perfetto trace-event JSON; counters and gauges sample on a
simulated-time interval into a flat time series.  Both are zero-cost
when disabled: components default to the inert :data:`DISABLED`
façade and guard every hook on its ``tracing`` flag.

The analysis layer (:mod:`repro.telemetry.analysis`) interprets the
raw data: declarative :class:`SloObjective` monitors burn-rate-
evaluated over the metrics series into :class:`Alert` records, plus
the scanner-driven :class:`HealthReport` pass/warn/fail verdict.  The
wall-clock profiler (:mod:`repro.telemetry.profiler`) attributes
*host* time to subsystems and exports a host-time track next to the
simulated-time tracks.
"""

from repro.telemetry.analysis import (
    DEFAULT_BURN_WINDOWS,
    Alert,
    BurnWindow,
    Finding,
    HealthReport,
    SloObjective,
    build_health,
    evaluate_objectives,
)
from repro.telemetry.core import (
    DISABLED,
    ScopedTelemetry,
    Telemetry,
    TelemetryReport,
)
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.profiler import (
    ProfiledTelemetry,
    WallClockProfile,
    WallClockProfiler,
)
from repro.telemetry.trace import (
    DEFAULT_TRACE_CAPACITY,
    TraceRecorder,
    assert_request_phases,
    render_trace,
    request_phases,
    trace_document,
    validate_trace,
)

__all__ = [
    "DISABLED",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_TRACE_CAPACITY",
    "Alert",
    "BurnWindow",
    "Counter",
    "Finding",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "ProfiledTelemetry",
    "ScopedTelemetry",
    "SloObjective",
    "Telemetry",
    "TelemetryReport",
    "TraceRecorder",
    "WallClockProfile",
    "WallClockProfiler",
    "assert_request_phases",
    "build_health",
    "evaluate_objectives",
    "render_trace",
    "request_phases",
    "trace_document",
    "validate_trace",
]
