"""repro.telemetry — request tracing and simulated-time metrics.

Spans and instants land in a bounded flight recorder and export as
Chrome/Perfetto trace-event JSON; counters and gauges sample on a
simulated-time interval into a flat time series.  Both are zero-cost
when disabled: components default to the inert :data:`DISABLED`
façade and guard every hook on its ``tracing`` flag.
"""

from repro.telemetry.core import DISABLED, Telemetry, TelemetryReport
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.trace import (
    DEFAULT_TRACE_CAPACITY,
    TraceRecorder,
    assert_request_phases,
    render_trace,
    request_phases,
    trace_document,
    validate_trace,
)

__all__ = [
    "DISABLED",
    "DEFAULT_TRACE_CAPACITY",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryReport",
    "TraceRecorder",
    "assert_request_phases",
    "render_trace",
    "request_phases",
    "trace_document",
    "validate_trace",
]
