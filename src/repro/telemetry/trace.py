"""Per-request trace spans: flight recorder + Chrome trace export.

The recorder keeps a bounded ring buffer of *trace events* — complete
spans (``ph="X"``), instants (``ph="i"``) — stamped in simulated time.
Call sites pass timestamps explicitly (they all hold the simulator),
so the recorder itself is pure data and pickles cleanly through the
sweep worker pool.

Export follows the Chrome trace-event JSON format (the ``traceEvents``
array form), which ``chrome://tracing`` and https://ui.perfetto.dev
both open directly.  Timestamps are microseconds of *simulated* time;
each instrumented component (scheduler, devices, store, control plane)
renders as its own named track via ``thread_name`` metadata events.
"""

from __future__ import annotations

import collections
import json
import math
from typing import Any, Iterable

from repro.errors import TelemetryError

#: Ring-buffer capacity a :class:`TraceRecorder` gets by default —
#: roughly 40k requests' worth of spans, plenty for the example runs.
DEFAULT_TRACE_CAPACITY = 262_144

#: Event-phase codes the exporter emits (subset of the trace format).
_PHASES = ("X", "i", "M", "C")


class TraceRecorder:
    """Bounded flight recorder of simulated-time trace events.

    Events are ``(ph, track, name, ts_ns, dur_ns, args)`` tuples in a
    ``deque(maxlen=capacity)``: recording never allocates beyond the
    cap, and under overflow the *oldest* events fall out first — the
    flight-recorder discipline (the tail of a run is what you debug).
    """

    __slots__ = ("capacity", "events", "recorded")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise TelemetryError(
                f"trace capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.events: collections.deque = collections.deque(maxlen=capacity)
        self.recorded = 0

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring buffer."""
        return self.recorded - len(self.events)

    def span(self, track: str, name: str, start_ns: float,
             end_ns: float, args: dict | None = None) -> None:
        """Record one complete span (``ph="X"``) on ``track``."""
        self.recorded += 1
        self.events.append(("X", track, name, start_ns,
                            max(end_ns - start_ns, 0.0), args))

    def instant(self, track: str, name: str, ts_ns: float,
                args: dict | None = None) -> None:
        """Record one instant event (``ph="i"``) on ``track``."""
        self.recorded += 1
        self.events.append(("i", track, name, ts_ns, 0.0, args))


def trace_document(events: Iterable[tuple], dropped: int = 0,
                   metrics_rows: list[dict] | None = None,
                   alerts: Iterable | None = None,
                   host_sections: Iterable[tuple] | None = None) -> dict:
    """Chrome trace-event JSON document for recorded ``events``.

    ``metrics_rows`` (the sampled time series, if any) are embedded as
    counter events (``ph="C"``) so Perfetto plots queue depth,
    utilization and power draw as tracks alongside the request spans.
    ``alerts`` (fired SLO burn-rate monitors from
    :mod:`repro.telemetry.analysis`) become instants on the control
    track; ``host_sections`` — ``(subsystem, start_ns, dur_ns)``
    host-clock intervals from the wall-clock profiler — render as a
    second process (``pid=2``) so real time sits next to simulated
    time in the same view.
    """
    events = list(events)
    alerts = list(alerts or ())
    host_sections = list(host_sections or ())
    tracks = {event[1] for event in events}
    if alerts:
        tracks.add("control")
    tracks = sorted(tracks)
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    trace_events: list[dict] = []
    for track in tracks:
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": tids[track], "args": {"name": track},
        })
    for ph, track, name, ts_ns, dur_ns, args in events:
        event: dict = {"name": name, "cat": "repro", "ph": ph,
                       "ts": ts_ns / 1000.0, "pid": 1, "tid": tids[track]}
        if ph == "X":
            event["dur"] = dur_ns / 1000.0
        elif ph == "i":
            event["s"] = "t"
        if args:
            event["args"] = args
        trace_events.append(event)
    for row in metrics_rows or ():
        ts_us = row.get("t_ms", 0.0) * 1000.0
        for key, value in row.items():
            if key == "t_ms" or not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or math.isnan(value):
                continue
            trace_events.append({
                "name": key, "cat": "metrics", "ph": "C", "ts": ts_us,
                "pid": 1, "args": {"value": value},
            })
    for alert in alerts:
        trace_events.append({
            "name": f"alert:{alert.objective}", "cat": "alert",
            "ph": "i", "s": "t",
            "ts": alert.window_end_ms * 1000.0,
            "pid": 1, "tid": tids["control"],
            "args": alert.trace_args(),
        })
    if host_sections:
        host_tracks = sorted({section[0] for section in host_sections})
        host_tids = {track: index + 1
                     for index, track in enumerate(host_tracks)}
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": 2,
            "args": {"name": "host-clock"},
        })
        for track in host_tracks:
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 2,
                "tid": host_tids[track], "args": {"name": f"host:{track}"},
            })
        for name, start_ns, dur_ns in host_sections:
            trace_events.append({
                "name": name, "cat": "host", "ph": "X",
                "ts": start_ns / 1000.0, "dur": dur_ns / 1000.0,
                "pid": 2, "tid": host_tids[name],
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-ns", "dropped_events": dropped},
    }


def render_trace(document: dict) -> str:
    """The document as deterministic JSON text (byte-stable per run)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# -- validation ----------------------------------------------------------------


def validate_trace(document: Any) -> dict:
    """Structurally validate a Chrome trace-event document.

    Raises :class:`~repro.errors.TelemetryError` naming the first
    offending event; returns summary counts (events, span events,
    distinct request ids) on success.  This is what the CI smoke job
    runs against an exported ``trace.json``.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise TelemetryError(
            "trace document must be an object with a 'traceEvents' array"
        )
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise TelemetryError("'traceEvents' must be an array")
    spans = 0
    requests: set = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TelemetryError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise TelemetryError(
                    f"traceEvents[{index}] missing required key {key!r}"
                )
        if event["ph"] not in _PHASES:
            raise TelemetryError(
                f"traceEvents[{index}] has unknown phase {event['ph']!r}"
            )
        if event["ph"] != "M" and not isinstance(
                event.get("ts"), (int, float)):
            raise TelemetryError(
                f"traceEvents[{index}] needs a numeric 'ts'"
            )
        if event["ph"] == "X":
            spans += 1
            if not isinstance(event.get("dur"), (int, float)) \
                    or event["dur"] < 0:
                raise TelemetryError(
                    f"traceEvents[{index}] is a span without a "
                    f"non-negative 'dur'"
                )
        req = event.get("args", {}).get("req") \
            if isinstance(event.get("args"), dict) else None
        if req is not None:
            requests.add(req)
    return {"events": len(events), "spans": spans,
            "requests": len(requests)}


def request_phases(document: dict) -> dict[int, set[str]]:
    """Event-name sets per request id (``args.req``) in a document."""
    phases: dict[int, set[str]] = {}
    for event in document.get("traceEvents", ()):
        args = event.get("args")
        if isinstance(args, dict) and "req" in args:
            phases.setdefault(args["req"], set()).add(event["name"])
    return phases


def assert_request_phases(
        document: dict,
        required: tuple[str, ...] = ("admit", "queue", "dispatch",
                                     "complete")) -> int:
    """Every completed request must carry the full span chain.

    Checks each request id with a ``complete`` event for all of
    ``required`` (requests whose early spans fell out of the ring
    buffer are skipped — their ``admit`` is gone by design).  Returns
    the number of fully-chained requests; raises
    :class:`~repro.errors.TelemetryError` when a retained request is
    missing phases or no request completed at all.
    """
    dropped = document.get("otherData", {}).get("dropped_events", 0)
    checked = 0
    for req, names in sorted(request_phases(document).items()):
        if "complete" not in names:
            continue
        missing = [name for name in required if name not in names]
        if missing:
            if dropped:
                continue  # early spans legitimately overwritten
            raise TelemetryError(
                f"request {req} completed but lacks phase(s) {missing}; "
                f"recorded: {sorted(names)}"
            )
        checked += 1
    if checked == 0:
        raise TelemetryError(
            "no completed request carries the full "
            f"{list(required)} span chain"
        )
    return checked
