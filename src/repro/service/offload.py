"""The compression offload service: open-loop serving over a fleet.

This is the layer the paper's placement taxonomy (Figure 1) feeds
into: a stream of compression requests from many tenants arrives
open-loop and must be placed on one of several CDPUs — CPU software,
peripheral QAT, on-chip QAT, or in-storage DPZip — each with its own
latency budget, queue and degradation behaviour.  The service runs
entirely on :class:`repro.sim.engine.Simulator`:

* arrivals come from an :class:`~repro.service.request.OpenLoopStream`;
* a :class:`~repro.service.policy.DispatchPolicy` picks the placement;
* each :class:`~repro.service.fleet.FleetDevice` batches submissions
  and serves engine time through the :mod:`repro.virt.qos` arbiters
  (so Figure 20's fairness results apply per device);
* an :class:`~repro.service.admission.AdmissionController` spills to
  CPU software or sheds when the fleet saturates;
* per-tenant/per-placement percentiles come out of
  :mod:`repro.sim.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from repro.errors import ServiceError
from repro.hw.cpu import CpuSoftwareDevice
from repro.hw.dpzip import DpzipEngine
from repro.hw.engine import CdpuDevice
from repro.hw.qat import Qat4xxx, Qat8970
from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.fleet import FleetDevice
from repro.service.model import DeviceCostModel, ModeledCost
from repro.service.policy import DispatchPolicy, make_policy
from repro.service.request import OffloadRequest, OpenLoopStream
from repro.sim.engine import Process, Simulator
from repro.sim.stats import KeyedLatencyRecorder, LatencyRecorder


@dataclass
class ServiceMetrics:
    """Counters and recorders accumulated over one service run."""

    offered: int = 0
    completed: int = 0
    spilled: int = 0
    shed: int = 0
    completed_bytes: int = 0
    #: Bytes completed inside the measurement window (backlog drained
    #: after arrivals stop must not inflate goodput).
    window_bytes: int = 0
    overall: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: Keyed by (tenant, placement value) — the Figure 20 breakdown.
    by_tenant_placement: KeyedLatencyRecorder = field(
        default_factory=KeyedLatencyRecorder)
    #: Keyed by (op, placement value) — where compress vs decompress
    #: traffic actually landed (the read-path placement question).
    by_op_placement: KeyedLatencyRecorder = field(
        default_factory=KeyedLatencyRecorder)


@dataclass
class ServiceReport:
    """Per-run summary: throughput, percentiles, breakdowns."""

    policy: str
    duration_ns: float
    offered: int
    completed: int
    spilled: int
    shed: int
    completed_bytes: int
    window_bytes: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    breakdown: list[dict] = field(default_factory=list)
    #: One row per (op, placement): the decompress/compress split.
    op_breakdown: list[dict] = field(default_factory=list)
    per_device: list[dict] = field(default_factory=list)

    @property
    def completed_gbps(self) -> float:
        """Goodput over the measurement window (bytes/ns == GB/s)."""
        if self.duration_ns <= 0:
            return 0.0
        return self.window_bytes / self.duration_ns

    @property
    def goodput_fraction(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def row(self) -> dict:
        """Flat row for :func:`repro.profiling.report.format_table`."""
        return {
            "policy": self.policy,
            "completed_gbps": self.completed_gbps,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "completed": self.completed,
            "spilled": self.spilled,
            "shed": self.shed,
        }

    def placement_shares(self, op: str) -> dict[str, float]:
        """Fraction of completed ``op`` requests served per placement."""
        counts = {row["placement"]: row["count"]
                  for row in self.op_breakdown if row["op"] == op}
        total = sum(counts.values())
        if total == 0:
            return {}
        return {placement: count / total
                for placement, count in counts.items()}


class OffloadService:
    """Routes an open-loop request stream across a CDPU fleet."""

    def __init__(self, sim: Simulator,
                 devices: Sequence[FleetDevice],
                 policy: DispatchPolicy | str,
                 admission: AdmissionController | None = None,
                 spill_device: FleetDevice | None = None) -> None:
        if not devices:
            raise ServiceError("fleet must contain at least one device")
        self.sim = sim
        self.devices = list(devices)
        self.policy = (make_policy(policy) if isinstance(policy, str)
                       else policy)
        self.admission = admission
        if admission is not None:
            # Sweeps share one controller across runs; its EWMA state
            # belongs to this run only.
            admission.reset()
        self.spill_device = spill_device
        self.metrics = ServiceMetrics()
        #: Completions at or before this instant count toward goodput;
        #: None counts everything (set by :meth:`drive`).
        self.measure_until_ns: float | None = None

    # -- state ----------------------------------------------------------------

    def utilization(self) -> float:
        """Fleet fill fraction: in-flight over aggregate queue capacity."""
        capacity = sum(d.queue_limit for d in self.devices)
        return sum(d.inflight for d in self.devices) / capacity

    # -- submission -----------------------------------------------------------

    def submit(self, request: OffloadRequest,
               on_complete: Callable[[OffloadRequest, FleetDevice,
                                      ModeledCost], None] | None = None
               ) -> str:
        """Route one request; returns 'admitted', 'spilled' or 'shed'.

        ``on_complete`` (if given) runs after the service's own
        completion accounting — the hook upper layers like the block
        store use to observe their requests finishing.
        """
        request.arrival_ns = self.sim.now
        self.metrics.offered += 1
        hook = self._completion_hook(on_complete)
        if self.admission is not None:
            decision = self.admission.decide(self.utilization())
            if decision is AdmissionDecision.SHED:
                self.metrics.shed += 1
                return "shed"
            if decision is AdmissionDecision.SPILL:
                return self._spill_or_shed(request, hook)
        device = self.policy.select(request, self.devices)
        if device is None or not device.can_accept():
            # Backpressure: the chosen queue is full (or every queue is,
            # for the cost-model policy) — fall back rather than block
            # the open-loop arrival process.
            return self._spill_or_shed(request, hook)
        device.enqueue(request, hook)
        return "admitted"

    def _completion_hook(self, extra: Callable[[OffloadRequest, FleetDevice,
                                                ModeledCost], None] | None
                         ) -> Callable[[OffloadRequest, FleetDevice,
                                        ModeledCost], None]:
        if extra is None:
            return self._on_complete

        def chained(request: OffloadRequest, device: FleetDevice,
                    cost: ModeledCost) -> None:
            self._on_complete(request, device, cost)
            extra(request, device, cost)
        return chained

    def _spill_or_shed(self, request: OffloadRequest,
                       on_complete: Callable[[OffloadRequest, FleetDevice,
                                              ModeledCost], None]) -> str:
        spill = self.spill_device
        if spill is not None and spill.can_accept():
            self.metrics.spilled += 1
            spill.enqueue(request, on_complete)
            return "spilled"
        self.metrics.shed += 1
        return "shed"

    def _on_complete(self, request: OffloadRequest, device: FleetDevice,
                     cost: ModeledCost) -> None:
        latency_ns = self.sim.now - request.arrival_ns
        self.metrics.completed += 1
        self.metrics.completed_bytes += request.nbytes
        if (self.measure_until_ns is None
                or self.sim.now <= self.measure_until_ns):
            self.metrics.window_bytes += request.nbytes
        self.metrics.overall.record(latency_ns)
        self.metrics.by_tenant_placement.record(
            (request.tenant, device.placement.value), latency_ns)
        self.metrics.by_op_placement.record(
            (request.op, device.placement.value), latency_ns)

    # -- open-loop driving ----------------------------------------------------

    def flush(self) -> None:
        """Flush every device's partially-filled batch immediately.

        Called when an arrival stream ends: buffered submissions must
        not wait on a batch timer that will never be joined by further
        arrivals.
        """
        for device in self.devices:
            device.batcher.flush_now()
        if self.spill_device is not None:
            self.spill_device.batcher.flush_now()

    def drive(self, stream: OpenLoopStream) -> Process:
        """Spawn the arrival process for ``stream`` on the simulator."""
        self.measure_until_ns = stream.duration_ns

        def arrivals() -> Generator[Any, Any, None]:
            rng = stream.rng()
            while True:
                yield self.sim.timeout(stream.next_gap_ns(rng))
                if self.sim.now >= stream.duration_ns:
                    break
                self.submit(stream.make_request(rng))
            self.flush()
        return self.sim.spawn(arrivals())

    # -- reporting ------------------------------------------------------------

    def report(self, duration_ns: float | None = None) -> ServiceReport:
        metrics = self.metrics
        summary = metrics.overall.summary_us()
        per_device = []
        for device in self.devices + (
                [self.spill_device] if self.spill_device else []):
            per_device.append({
                "device": device.name,
                "placement": device.placement.value,
                "completed": device.completed,
                "peak_inflight": device.peak_inflight,
                "batches": device.batches_submitted,
                "engine_gbps": device.throughput.gbps(),
            })
        return ServiceReport(
            policy=self.policy.name,
            duration_ns=duration_ns if duration_ns is not None
            else self.sim.now,
            offered=metrics.offered,
            completed=metrics.completed,
            spilled=metrics.spilled,
            shed=metrics.shed,
            completed_bytes=metrics.completed_bytes,
            window_bytes=metrics.window_bytes,
            mean_us=summary["mean_us"],
            p50_us=summary["p50_us"],
            p95_us=summary["p95_us"],
            p99_us=summary["p99_us"],
            breakdown=metrics.by_tenant_placement.breakdown(
                ("tenant", "placement")),
            op_breakdown=metrics.by_op_placement.breakdown(
                ("op", "placement")),
            per_device=per_device,
        )


def default_fleet() -> list[CdpuDevice]:
    """The paper's full placement mix: one device per Figure 1 column."""
    return [
        CpuSoftwareDevice("deflate"),
        Qat8970(),      # peripheral
        Qat4xxx(),      # on-chip
        DpzipEngine(),  # in-storage
    ]


FleetSpec = Sequence[
    tuple[CdpuDevice, DeviceCostModel | dict[str, DeviceCostModel] | None]
    | CdpuDevice
]


def build_fleet(sim: Simulator,
                fleet: FleetSpec | None = None,
                spill: tuple[CdpuDevice,
                             DeviceCostModel | dict[str, DeviceCostModel]
                             | None] | CdpuDevice | None = None,
                batch_size: int = 4,
                batch_timeout_ns: float | None = 20_000.0,
                queue_limit: int | None = None,
                fair_share_tenants: int | None = None
                ) -> tuple[list[FleetDevice], FleetDevice | None]:
    """Wrap fleet/spill entries as :class:`FleetDevice` members.

    Entries may be bare devices (calibrated on construction), a
    ``(device, model)`` pair, or ``(device, {op: model})`` pairs from
    :func:`~repro.service.model.calibrated_ops` for mixed-op serving;
    sweeps calibrate once and reuse the pairs across runs.
    """
    def as_fleet_device(entry) -> FleetDevice:
        device, model = (entry if isinstance(entry, tuple)
                         else (entry, None))
        return FleetDevice(
            sim, device, model,
            queue_limit=queue_limit,
            batch_size=batch_size,
            batch_timeout_ns=batch_timeout_ns,
            fair_share_tenants=fair_share_tenants,
        )

    members = [as_fleet_device(entry)
               for entry in (fleet if fleet is not None else default_fleet())]
    spill_member = as_fleet_device(spill) if spill is not None else None
    return members, spill_member


def run_offload_service(
        stream: OpenLoopStream,
        policy: DispatchPolicy | str = "cost-model",
        fleet: FleetSpec | None = None,
        spill: tuple[CdpuDevice,
                     DeviceCostModel | dict[str, DeviceCostModel] | None]
        | CdpuDevice | None = None,
        admission: AdmissionController | None = None,
        batch_size: int = 4,
        batch_timeout_ns: float | None = 20_000.0,
        queue_limit: int | None = None,
        fair_share_tenants: int | None = None) -> ServiceReport:
    """One-call service run: build the fleet, drive the stream, report.

    ``fleet``/``spill`` entries may be bare devices (calibrated here),
    ``(device, model)`` pairs, or ``(device, {op: model})`` pairs so
    sweeps can calibrate once and reuse across ops.
    """
    sim = Simulator()
    members, spill_member = build_fleet(
        sim, fleet, spill,
        batch_size=batch_size,
        batch_timeout_ns=batch_timeout_ns,
        queue_limit=queue_limit,
        fair_share_tenants=fair_share_tenants,
    )
    service = OffloadService(sim, members, policy,
                             admission=admission,
                             spill_device=spill_member)
    service.drive(stream)
    sim.run()
    return service.report(duration_ns=stream.duration_ns)
