"""The compression offload service: open-loop serving over a fleet.

This is the layer the paper's placement taxonomy (Figure 1) feeds
into: a stream of compression requests from many tenants arrives
open-loop and must be placed on one of several CDPUs — CPU software,
peripheral QAT, on-chip QAT, or in-storage DPZip — each with its own
latency budget, queue and degradation behaviour.  The service runs
entirely on :class:`repro.sim.engine.Simulator` and is split into an
explicit control plane and data plane:

* arrivals come from an :class:`~repro.service.request.OpenLoopStream`
  carrying per-request :class:`~repro.service.request.SloClass` tags;
* the :class:`~repro.service.scheduler.SchedulerCore` (control plane)
  owns admission, placement (via a pluggable
  :class:`~repro.service.policy.DispatchPolicy`), deadline-aware
  dispatch order and SLO accounting;
* each :class:`~repro.service.fleet.FleetDevice` (data plane) batches
  submissions and serves engine time through the
  :mod:`repro.virt.qos` arbiters (so Figure 20's fairness results
  apply per device);
* the :class:`~repro.service.control.FleetController` reconfigures the
  fleet mid-run — hotplug, drain/unplug, brown-out, power caps —
  while the data plane keeps serving;
* per-tenant/per-placement/per-SLO-class percentiles come out of
  :mod:`repro.sim.stats`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from repro.errors import FleetConfigError, ServiceError
from repro.hw.cpu import CpuSoftwareDevice
from repro.hw.dpzip import DpzipEngine
from repro.hw.engine import CdpuDevice
from repro.hw.qat import Qat4xxx, Qat8970
from repro.service.admission import AdmissionController
from repro.service.fleet import FleetDevice
from repro.service.model import DeviceCostModel, ModeledCost
from repro.service.policy import DispatchPolicy, make_policy
from repro.service.request import OffloadRequest, OpenLoopStream
from repro.service.scheduler import SchedulerCore, ServiceMetrics
from repro.sim.engine import Process, Simulator


@dataclass
class ServiceReport:
    """Per-run summary: throughput, percentiles, breakdowns."""

    policy: str
    duration_ns: float
    offered: int
    completed: int
    spilled: int
    shed: int
    migrated: int
    completed_bytes: int
    window_bytes: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    breakdown: list[dict] = field(default_factory=list)
    #: One row per (op, placement): the decompress/compress split.
    op_breakdown: list[dict] = field(default_factory=list)
    #: One row per SLO class: deadline-miss and shed accounting.
    slo_breakdown: list[dict] = field(default_factory=list)
    per_device: list[dict] = field(default_factory=list)

    @property
    def completed_gbps(self) -> float:
        """Goodput over the measurement window (bytes/ns == GB/s)."""
        if self.duration_ns <= 0:
            return 0.0
        return self.window_bytes / self.duration_ns

    @property
    def goodput_fraction(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def row(self) -> dict:
        """Flat row for :func:`repro.profiling.report.format_table`."""
        return {
            "policy": self.policy,
            "completed_gbps": self.completed_gbps,
            "p50_us": self.p50_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "completed": self.completed,
            "spilled": self.spilled,
            "shed": self.shed,
        }

    def placement_shares(self, op: str) -> dict[str, float]:
        """Fraction of completed ``op`` requests served per placement."""
        counts = {row["placement"]: row["count"]
                  for row in self.op_breakdown if row["op"] == op}
        total = sum(counts.values())
        if total == 0:
            return {}
        return {placement: count / total
                for placement, count in counts.items()}

    def slo_miss_rate(self, slo_name: str) -> float:
        """Deadline-miss fraction for one SLO class (shed counts missed)."""
        for row in self.slo_breakdown:
            if row["slo"] == slo_name:
                return row["miss_rate"]
        raise ServiceError(
            f"no traffic observed for SLO class {slo_name!r}; classes "
            f"seen: {[row['slo'] for row in self.slo_breakdown]}"
        )


class OffloadService:
    """Routes an open-loop request stream across a CDPU fleet.

    A thin serving façade: per-request control decisions live in the
    :class:`~repro.service.scheduler.SchedulerCore` (``self.scheduler``)
    and the fleet membership list is shared with it, so a
    :class:`~repro.service.control.FleetController` can reconfigure the
    fleet mid-run through the same core.
    """

    def __init__(self, sim: Simulator,
                 devices: Sequence[FleetDevice],
                 policy: DispatchPolicy | str,
                 admission: AdmissionController | None = None,
                 spill_device: FleetDevice | None = None,
                 pending_limit: int | None = None) -> None:
        if not devices:
            raise ServiceError("fleet must contain at least one device")
        self.sim = sim
        self.devices = list(devices)
        if admission is not None:
            # Sweeps share one controller across runs; its EWMA state
            # belongs to this run only.
            admission.reset()
        self.scheduler = SchedulerCore(
            sim, self.devices,
            make_policy(policy) if isinstance(policy, str) else policy,
            admission=admission,
            spill_device=spill_device,
            pending_limit=pending_limit,
        )

    # -- control-plane views ---------------------------------------------------

    @property
    def policy(self) -> DispatchPolicy:
        return self.scheduler.placement

    @property
    def admission(self) -> AdmissionController | None:
        return self.scheduler.admission

    @property
    def spill_device(self) -> FleetDevice | None:
        return self.scheduler.spill_device

    @property
    def metrics(self) -> ServiceMetrics:
        return self.scheduler.metrics

    @property
    def measure_until_ns(self) -> float | None:
        """Completions at or before this instant count toward goodput."""
        return self.scheduler.measure_until_ns

    @measure_until_ns.setter
    def measure_until_ns(self, value: float | None) -> None:
        self.scheduler.measure_until_ns = value

    def utilization(self) -> float:
        """Fleet fill fraction: in-flight over online queue capacity."""
        return self.scheduler.utilization()

    # -- submission ------------------------------------------------------------

    def submit(self, request: OffloadRequest,
               on_complete: Callable[[OffloadRequest, FleetDevice,
                                      ModeledCost], None] | None = None,
               on_drop: Callable[[OffloadRequest], None] | None = None
               ) -> str:
        """Route one request; returns 'admitted', 'queued', 'spilled'
        or 'shed'.

        ``on_complete`` (if given) runs after the scheduler's own
        completion accounting — the hook upper layers like the block
        store use to observe their requests finishing.  ``on_drop``
        runs if the request is shed, including a later eviction of a
        queued request by higher-priority work.
        """
        return self.scheduler.submit(request, on_complete=on_complete,
                                     on_drop=on_drop)

    # -- open-loop driving -----------------------------------------------------

    def flush(self) -> None:
        """Flush every device's partially-filled batch immediately.

        Called when an arrival stream ends: buffered submissions must
        not wait on a batch timer that will never be joined by further
        arrivals.  Also arms the scheduler's drain mode, so pending
        work dispatched *after* this point (pump, migration) keeps
        flushing instead of stranding in a timer-less batch buffer.
        """
        self.scheduler.drain_mode = True
        self.scheduler.flush_batches()

    def drive(self, stream: OpenLoopStream) -> Process:
        """Spawn the arrival process for ``stream`` on the simulator.

        Legacy single-stream driver: it owns the measurement window and
        flushes at stream end itself, so it cannot share a simulation
        with other traffic sources.  Multi-client runs (and any change
        to the arrival/flush semantics here) go through
        :class:`repro.cluster.clients.OpenLoopClient`, which keeps an
        equivalent loop under the session's coordination.
        """
        self.measure_until_ns = stream.duration_ns

        def arrivals() -> Generator[Any, Any, None]:
            rng = stream.rng()
            while True:
                yield self.sim.timeout(stream.next_gap_ns(rng))
                if self.sim.now >= stream.duration_ns:
                    break
                self.submit(stream.make_request(rng))
            self.flush()
        return self.sim.spawn(arrivals())

    # -- reporting -------------------------------------------------------------

    def report(self, duration_ns: float | None = None) -> ServiceReport:
        metrics = self.metrics
        summary = metrics.overall.summary_us()
        per_device = []
        for device in self.devices + (
                [self.spill_device] if self.spill_device else []):
            per_device.append({
                "device": device.name,
                "placement": device.placement.value,
                "state": device.state.value,
                "speed": device.speed_factor,
                "completed": device.completed,
                "peak_inflight": device.peak_inflight,
                "batches": device.batches_submitted,
                "engine_gbps": device.throughput.gbps(),
            })
        slo_breakdown = []
        for name, stats in sorted(metrics.slo.items(),
                                  key=lambda kv: (kv[1].tier, kv[0])):
            latency = metrics.by_slo.summary_us((name,))
            slo_breakdown.append({
                "slo": name,
                "tier": stats.tier,
                "completed": stats.completed,
                "missed": stats.missed,
                "shed": stats.shed,
                "infeasible": stats.infeasible,
                "miss_rate": stats.miss_rate,
                "p50_us": latency["p50_us"],
                "p99_us": latency["p99_us"],
            })
        return ServiceReport(
            policy=self.policy.name,
            duration_ns=duration_ns if duration_ns is not None
            else self.sim.now,
            offered=metrics.offered,
            completed=metrics.completed,
            spilled=metrics.spilled,
            shed=metrics.shed,
            migrated=metrics.migrated,
            completed_bytes=metrics.completed_bytes,
            window_bytes=metrics.window_bytes,
            mean_us=summary["mean_us"],
            p50_us=summary["p50_us"],
            p95_us=summary["p95_us"],
            p99_us=summary["p99_us"],
            breakdown=metrics.by_tenant_placement.breakdown(
                ("tenant", "placement")),
            op_breakdown=metrics.by_op_placement.breakdown(
                ("op", "placement")),
            slo_breakdown=slo_breakdown,
            per_device=per_device,
        )


def default_fleet() -> list[CdpuDevice]:
    """The paper's full placement mix: one device per Figure 1 column."""
    return [
        CpuSoftwareDevice("deflate"),
        Qat8970(),      # peripheral
        Qat4xxx(),      # on-chip
        DpzipEngine(),  # in-storage
    ]


FleetSpec = Sequence[
    tuple[CdpuDevice, DeviceCostModel | dict[str, DeviceCostModel] | None]
    | CdpuDevice
]


def build_fleet(sim: Simulator,
                fleet: FleetSpec | None = None,
                spill: tuple[CdpuDevice,
                             DeviceCostModel | dict[str, DeviceCostModel]
                             | None] | CdpuDevice | None = None,
                batch_size: int = 4,
                batch_timeout_ns: float | None = 20_000.0,
                queue_limit: int | None = None,
                fair_share_tenants: int | None = None
                ) -> tuple[list[FleetDevice], FleetDevice | None]:
    """Wrap fleet/spill entries as :class:`FleetDevice` members.

    Entries may be bare devices (calibrated on construction), a
    ``(device, model)`` pair, or ``(device, {op: model})`` pairs from
    :func:`~repro.service.model.calibrated_ops` for mixed-op serving;
    sweeps calibrate once and reuse the pairs across runs.

    Composition is validated loudly: duplicate device names (which
    would make :class:`~repro.service.control.FleetController` targets
    ambiguous and per-device reports indistinguishable) and
    non-positive queue depths raise :class:`~repro.errors.
    FleetConfigError` naming the offending entry.
    """
    if queue_limit is not None and queue_limit < 1:
        raise FleetConfigError(
            f"queue limit must be >= 1, got {queue_limit}"
        )

    def as_fleet_device(entry) -> FleetDevice:
        device, model = (entry if isinstance(entry, tuple)
                         else (entry, None))
        if device.queue_depth < 1:
            raise FleetConfigError(
                f"device {device.name!r} has non-positive queue depth "
                f"{device.queue_depth}"
            )
        return FleetDevice(
            sim, device, model,
            queue_limit=queue_limit,
            batch_size=batch_size,
            batch_timeout_ns=batch_timeout_ns,
            fair_share_tenants=fair_share_tenants,
        )

    members = [as_fleet_device(entry)
               for entry in (fleet if fleet is not None else default_fleet())]
    seen: dict[str, int] = {}
    for member in members:
        seen[member.name] = seen.get(member.name, 0) + 1
    duplicates = sorted(name for name, count in seen.items() if count > 1)
    if duplicates:
        raise FleetConfigError(
            f"duplicate device name(s) {duplicates} in fleet; give each "
            f"member a unique name so controllers and reports can target "
            f"it (e.g. rename the second instance)"
        )
    spill_member = as_fleet_device(spill) if spill is not None else None
    return members, spill_member


def run_offload_service(
        stream: OpenLoopStream,
        policy: DispatchPolicy | str = "cost-model",
        fleet: FleetSpec | None = None,
        spill: tuple[CdpuDevice,
                     DeviceCostModel | dict[str, DeviceCostModel] | None]
        | CdpuDevice | None = None,
        admission: AdmissionController | None = None,
        batch_size: int = 4,
        batch_timeout_ns: float | None = 20_000.0,
        queue_limit: int | None = None,
        fair_share_tenants: int | None = None,
        pending_limit: int | None = None,
        reconfigure: Callable[["OffloadService"], None] | None = None
        ) -> ServiceReport:
    """Deprecated one-call service run kept as a back-compat shim.

    New code should build a :class:`~repro.cluster.session.Cluster`
    (declaratively via :class:`~repro.cluster.spec.ClusterSpec`, or
    from pre-built parts), attach clients, and read the unified
    :class:`~repro.cluster.result.RunResult`; this shim wires the same
    session underneath and returns only the service view.

    ``fleet``/``spill`` entries may be bare devices (calibrated here),
    ``(device, model)`` pairs, or ``(device, {op: model})`` pairs so
    sweeps can calibrate once and reuse across ops.

    ``reconfigure`` (if given) runs with the built service before the
    simulation starts — the hook for scheduling mid-run fleet events
    through a :class:`~repro.service.control.FleetController` (brown-
    outs, unplugs, power caps).
    """
    from repro.cluster.session import Cluster

    warnings.warn(
        "run_offload_service is deprecated; use Cluster.from_spec with a "
        "ClusterSpec and attach an open-loop client instead "
        "(see repro.cluster)",
        DeprecationWarning, stacklevel=2,
    )
    sim = Simulator()
    members, spill_member = build_fleet(
        sim, fleet, spill,
        batch_size=batch_size,
        batch_timeout_ns=batch_timeout_ns,
        queue_limit=queue_limit,
        fair_share_tenants=fair_share_tenants,
    )
    service = OffloadService(sim, members, policy,
                             admission=admission,
                             spill_device=spill_member,
                             pending_limit=pending_limit)
    cluster = Cluster(sim, service)
    if reconfigure is not None:
        reconfigure(service)
    cluster.open_loop(stream)
    return cluster.run().service
