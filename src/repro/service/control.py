"""Dynamic fleet reconfiguration: hotplug, brown-out, power capping.

:class:`FleetController` is the control plane's actuator: it changes
fleet membership and device speed *while the data plane keeps serving*.
Every action goes through the shared
:class:`~repro.service.scheduler.SchedulerCore` so dispatch, admission
and the pending queue react on the same simulation tick:

* **hotplug** — a new :class:`~repro.service.fleet.FleetDevice` joins
  the membership list and the pending queue drains onto it;
* **unplug** — a device drains (graceful: in-flight work finishes) or
  is yanked (hard: not-yet-doorbelled submissions migrate back through
  the scheduler, spilling via the existing CPU path if the rest of the
  fleet is saturated), then goes offline;
* **brown-out** — a device is derated to a fraction of nominal speed
  mid-run (the degradation axis of Figure 12/18); response estimates
  scale with the derate, so cost-model placement steers around the
  sick device without being told;
* **power cap** — a fleet-wide wattage budget from
  :mod:`repro.hw.power` is turned into proportional per-device
  derates, modelling a rack-level cap as a coordinated brown-out.

Actions can be applied immediately or scheduled at a virtual timestamp
with :meth:`FleetController.at` — the mechanism the ``slo_degradation``
experiment uses to inject a brown-out mid-run.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.errors import ServiceError
from repro.hw.power import device_active_w, plan_power_cap
from repro.service.fleet import DeviceState, FleetDevice
from repro.service.offload import OffloadService
from repro.service.scheduler import SchedulerCore
from repro.sim.engine import Process, Simulator

#: How often a drain waits between in-flight checks before offlining.
DRAIN_POLL_NS = 1_000.0


class FleetController:
    """Reconfigures a live fleet through its scheduler core."""

    def __init__(self, service: OffloadService | SchedulerCore) -> None:
        self.scheduler: SchedulerCore = (
            service.scheduler if isinstance(service, OffloadService)
            else service)
        self.sim: Simulator = self.scheduler.sim
        #: Reconfiguration audit log: (time_ns, action, device, detail).
        self.events: list[tuple[float, str, str, str]] = []

    # -- scheduling ------------------------------------------------------------

    def at(self, time_ns: float, action: Callable[[], Any]) -> Process:
        """Run ``action`` at virtual time ``time_ns`` (>= now)."""
        delay = time_ns - self.sim.now
        if delay < 0:
            raise ServiceError(
                f"cannot schedule at {time_ns} ns; now is {self.sim.now}"
            )

        def fire() -> Generator[Any, Any, None]:
            yield self.sim.timeout(delay)
            action()
        return self.sim.spawn(fire())

    def _log(self, action: str, device: str, detail: str = "") -> None:
        self.events.append((self.sim.now, action, device, detail))
        tel = self.scheduler.telemetry
        if tel.tracing:
            tel.instant("control", action, self.sim.now, {
                "device": device, "detail": detail,
            })

    def _find(self, name: str) -> FleetDevice:
        matches = [device for device in self.scheduler.devices
                   if device.name == name]
        if not matches:
            raise ServiceError(
                f"no fleet device named {name!r}; members: "
                f"{[d.name for d in self.scheduler.devices]}"
            )
        if len(matches) > 1:
            raise ServiceError(
                f"device name {name!r} is ambiguous: {len(matches)} fleet "
                f"members share it; give members unique names to control "
                f"them individually"
            )
        return matches[0]

    # -- membership ------------------------------------------------------------

    def hotplug(self, member: FleetDevice) -> None:
        """Add ``member`` to the fleet and drain pending work onto it."""
        if member in self.scheduler.devices:
            raise ServiceError(f"{member.name} is already a fleet member")
        if member.sim is not self.sim:
            raise ServiceError(
                f"{member.name} was built on a different simulator; its "
                f"serving processes would never run on this one"
            )
        member.set_online()
        member.telemetry = self.scheduler.telemetry
        self.scheduler.devices.append(member)
        self._log("hotplug", member.name)
        self.scheduler.pump()

    def unplug(self, name: str, drain: bool = True) -> Process:
        """Remove device ``name`` from service.

        ``drain=True`` is the graceful path: the device stops accepting
        work, everything in flight (batched or doorbelled) completes,
        then the device goes offline.  ``drain=False`` is the yank: work
        that has not rung a doorbell is reclaimed and migrated through
        the scheduler (re-placed, queued, or spilled via the CPU path);
        only work already past the doorbell still completes on the
        device before it offlines.  Returns the process that resolves
        once the device is offline.
        """
        device = self._find(name)
        if device.state is DeviceState.OFFLINE:
            raise ServiceError(f"{name} is already offline")
        device.drain()
        self._log("unplug", name, "drain" if drain else "yank")
        if drain:
            # A draining device accepts nothing new, so a partially
            # filled batch would never reach its size trigger — ring
            # the doorbell now or the drain never finishes.
            device.batcher.flush_now()
        else:
            reclaimed = device.take_buffered()
            if reclaimed:
                self._log("migrate", name, f"{len(reclaimed)} requests")
                self.scheduler.migrate(reclaimed)

        def offline_when_drained() -> Generator[Any, Any, None]:
            while device.inflight > 0:
                yield self.sim.timeout(DRAIN_POLL_NS)
            device.set_offline()
            self._log("offline", name)
        return self.sim.spawn(offline_when_drained())

    # -- derating --------------------------------------------------------------

    def brown_out(self, name: str, speed_factor: float) -> None:
        """Derate device ``name`` to ``speed_factor`` of nominal speed."""
        device = self._find(name)
        device.set_speed(speed_factor)
        self._log("brown-out", name, f"speed={speed_factor:g}")
        # A *restored* device is new capacity; let pending work at it.
        self.scheduler.pump()

    def restore(self, name: str) -> None:
        """Return device ``name`` to full speed."""
        self.brown_out(name, 1.0)

    # -- power capping ---------------------------------------------------------

    def _online_keyed(self) -> list[tuple[str, FleetDevice]]:
        """Online members with unique keys (duplicates get ``#n``).

        Fleets may carry identical devices (the ``asic`` mix runs two
        DPZip engines, both named ``dpzip``); keying by bare name would
        undercount their power demand and cap only the first one.
        """
        keyed: list[tuple[str, FleetDevice]] = []
        seen: dict[str, int] = {}
        for device in self.scheduler.devices:
            if not device.is_online:
                continue
            count = seen.get(device.name, 0)
            seen[device.name] = count + 1
            key = device.name if count == 0 else f"{device.name}#{count + 1}"
            keyed.append((key, device))
        return keyed

    def fleet_active_w(self) -> dict[str, float]:
        """Active wattage per online fleet member (hw.power catalog)."""
        return {key: device_active_w(device.name)
                for key, device in self._online_keyed()}

    def power_cap(self, budget_w: float) -> dict[str, float]:
        """Cap the online fleet's active draw at ``budget_w``.

        Converts the budget into per-device speed factors via
        :func:`repro.hw.power.plan_power_cap` (proportional derating)
        and applies them; returns the applied plan.  A budget the fleet
        already fits restores every device to full speed, so a single
        ``power_cap`` call also models lifting a cap.
        """
        keyed = self._online_keyed()
        plan = plan_power_cap({key: device_active_w(device.name)
                               for key, device in keyed}, budget_w)
        for key, device in keyed:
            device.set_speed(plan[key])
        self._log("power-cap", "*",
                  f"budget={budget_w:g}W "
                  f"factors={sorted(set(plan.values()))}")
        self.scheduler.pump()
        return plan

    def uncap(self) -> None:
        """Restore every fleet member to full speed."""
        for device in self.scheduler.devices:
            device.set_speed(1.0)
        self._log("power-cap", "*", "lifted")
        self.scheduler.pump()
