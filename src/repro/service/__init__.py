"""Compression offload service over a heterogeneous CDPU fleet.

Maps the paper's placement taxonomy (Figure 1: CPU software, peripheral,
on-chip, in-storage) onto a serving layer with an explicit control
plane / data plane split: open-loop request streams tagged with SLO
classes, a scheduler core owning admission and deadline-aware dispatch,
pluggable placement policies, batched submission, QoS arbitration per
device (Figure 20), CPU-software spill, and a fleet controller for
dynamic reconfiguration (hotplug, brown-out, power capping).
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.control import FleetController
from repro.service.fleet import Batcher, DeviceState, FleetDevice
from repro.service.model import (
    DeviceCostModel,
    ModeledCost,
    RatioAnchor,
    calibrated,
    calibrated_ops,
)
from repro.service.offload import (
    OffloadService,
    ServiceReport,
    build_fleet,
    default_fleet,
    run_offload_service,
)
from repro.service.policy import (
    POLICIES,
    CostModelPolicy,
    DeadlineAware,
    DispatchPolicy,
    RoundRobin,
    ShortestQueue,
    StaticPinning,
    make_policy,
)
from repro.service.request import (
    BEST_EFFORT,
    INTERACTIVE,
    SLO_CLASSES,
    THROUGHPUT,
    OffloadRequest,
    OpenLoopStream,
    SloClass,
    make_slo_class,
)
from repro.service.scheduler import (
    SchedulerCore,
    ServiceMetrics,
    SloStats,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BEST_EFFORT",
    "Batcher",
    "CostModelPolicy",
    "DeadlineAware",
    "DeviceCostModel",
    "DeviceState",
    "DispatchPolicy",
    "FleetController",
    "FleetDevice",
    "INTERACTIVE",
    "ModeledCost",
    "OffloadRequest",
    "OffloadService",
    "OpenLoopStream",
    "POLICIES",
    "RatioAnchor",
    "RoundRobin",
    "SLO_CLASSES",
    "SchedulerCore",
    "ServiceMetrics",
    "ServiceReport",
    "ShortestQueue",
    "SloClass",
    "SloStats",
    "StaticPinning",
    "THROUGHPUT",
    "build_fleet",
    "calibrated",
    "calibrated_ops",
    "default_fleet",
    "make_policy",
    "make_slo_class",
    "run_offload_service",
]
