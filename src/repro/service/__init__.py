"""Compression offload service over a heterogeneous CDPU fleet.

Maps the paper's placement taxonomy (Figure 1: CPU software, peripheral,
on-chip, in-storage) onto a serving layer: open-loop request streams,
pluggable placement policies, batched submission, QoS arbitration per
device (Figure 20), and admission control with CPU-software spill.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.fleet import Batcher, FleetDevice
from repro.service.model import (
    DeviceCostModel,
    ModeledCost,
    RatioAnchor,
    calibrated,
    calibrated_ops,
)
from repro.service.offload import (
    OffloadService,
    ServiceMetrics,
    ServiceReport,
    build_fleet,
    default_fleet,
    run_offload_service,
)
from repro.service.policy import (
    POLICIES,
    CostModelPolicy,
    DispatchPolicy,
    RoundRobin,
    ShortestQueue,
    StaticPinning,
    make_policy,
)
from repro.service.request import OffloadRequest, OpenLoopStream

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Batcher",
    "CostModelPolicy",
    "DeviceCostModel",
    "DispatchPolicy",
    "FleetDevice",
    "ModeledCost",
    "OffloadRequest",
    "OffloadService",
    "OpenLoopStream",
    "POLICIES",
    "RatioAnchor",
    "RoundRobin",
    "ServiceMetrics",
    "ServiceReport",
    "ShortestQueue",
    "StaticPinning",
    "build_fleet",
    "calibrated",
    "calibrated_ops",
    "default_fleet",
    "make_policy",
    "run_offload_service",
]
