"""Per-device request cost models calibrated from the hw layer.

The service layer needs ``(nbytes, ratio) -> latency budget`` for every
fleet device without running the functional codecs per request.  This
module runs a handful of real requests through a
:class:`~repro.hw.engine.CdpuDevice` at calibration time, splits each
measured :class:`~repro.hw.engine.RequestResult` with
:meth:`~repro.hw.engine.CdpuDevice.service_profile`, and fits a small
parametric model:

* ``submit_ns`` — the doorbell/descriptor cost, kept separate so
  batching can amortize it across a batch (Finding 2's per-request
  overhead is exactly what batch submission buys back);
* ``pre_ns``/``post_ns`` — transfer-in / transfer-out + completion,
  linear in request size (the interconnect term that separates the
  placements in Figure 11);
* ``engine_ns`` — engine occupancy, linear in size with the slope and
  intercept interpolated between compressibility anchors (the Figure 12
  degradation axis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError
from repro.hw.engine import CdpuDevice
from repro.workloads.datagen import ratio_controlled_bytes


@dataclass(slots=True)
class ModeledCost:
    """Predicted latency budget for one request (all ns)."""

    submit_ns: float
    pre_ns: float
    engine_ns: float
    post_ns: float

    @property
    def total_ns(self) -> float:
        return self.submit_ns + self.pre_ns + self.engine_ns + self.post_ns


@dataclass(slots=True)
class RatioAnchor:
    """Linear-in-size engine occupancy fit at one achieved ratio."""

    ratio: float
    overhead_ns: float
    per_byte_ns: float

    def engine_ns(self, nbytes: int) -> float:
        return self.overhead_ns + self.per_byte_ns * nbytes


class DeviceCostModel:
    """Predicts a request's phase budget for one device."""

    def __init__(self, anchors: list[RatioAnchor],
                 submit_ns: float = 0.0,
                 pre_overhead_ns: float = 0.0,
                 pre_per_byte_ns: float = 0.0,
                 post_overhead_ns: float = 0.0,
                 post_per_byte_ns: float = 0.0) -> None:
        if not anchors:
            raise ServiceError("cost model needs at least one ratio anchor")
        self.anchors = sorted(anchors, key=lambda a: a.ratio)
        self.submit_ns = submit_ns
        self.pre_overhead_ns = pre_overhead_ns
        self.pre_per_byte_ns = pre_per_byte_ns
        self.post_overhead_ns = post_overhead_ns
        self.post_per_byte_ns = post_per_byte_ns

    # -- prediction ----------------------------------------------------------

    def _engine_ns(self, nbytes: int, ratio: float) -> float:
        anchors = self.anchors
        if ratio <= anchors[0].ratio:
            return anchors[0].engine_ns(nbytes)
        if ratio >= anchors[-1].ratio:
            return anchors[-1].engine_ns(nbytes)
        for low, high in zip(anchors, anchors[1:]):
            if low.ratio <= ratio <= high.ratio:
                span = high.ratio - low.ratio
                weight = (ratio - low.ratio) / span if span > 0 else 0.0
                return (low.engine_ns(nbytes) * (1 - weight)
                        + high.engine_ns(nbytes) * weight)
        return anchors[-1].engine_ns(nbytes)  # pragma: no cover

    def predict(self, nbytes: int, ratio: float = 1.0) -> ModeledCost:
        if nbytes <= 0:
            raise ServiceError(f"request size must be > 0, got {nbytes}")
        return ModeledCost(
            submit_ns=max(self.submit_ns, 0.0),
            pre_ns=max(self.pre_overhead_ns
                       + self.pre_per_byte_ns * nbytes, 0.0),
            engine_ns=max(self._engine_ns(nbytes, ratio), 1.0),
            post_ns=max(self.post_overhead_ns
                        + self.post_per_byte_ns * nbytes, 0.0),
        )

    # -- calibration ---------------------------------------------------------

    @classmethod
    def calibrate(cls, device: CdpuDevice, op: str = "compress",
                  sizes: tuple[int, int] = (2048, 8192),
                  ratios: tuple[float, ...] = (0.35, 1.0),
                  seed: int = 17) -> "DeviceCostModel":
        """Fit a model by measuring real requests against ``device``."""
        if len(sizes) != 2 or sizes[0] >= sizes[1]:
            raise ServiceError(f"need two ascending sizes, got {sizes}")
        small, large = sizes
        anchors: list[RatioAnchor] = []
        submit_samples: list[float] = []
        pre_points: list[tuple[int, float]] = []
        post_points: list[tuple[int, float]] = []
        for index, target in enumerate(ratios):
            measured: list[tuple[int, float, float]] = []
            for size in (small, large):
                data = ratio_controlled_bytes(size, target,
                                              seed=seed + index)
                if op == "decompress":
                    payload = device.compress(data).payload
                    result = device.decompress(payload)
                else:
                    result = device.compress(data)
                profile = device.service_profile(result)
                submit = result.latency.submit_ns
                submit_samples.append(submit)
                pre_points.append((size, max(profile.pre_ns - submit, 0.0)))
                post_points.append((size, profile.post_ns))
                measured.append((size, profile.engine_busy_ns, result.ratio))
            (s0, e0, r0), (s1, e1, _) = measured
            per_byte = max((e1 - e0) / (s1 - s0), 0.0)
            overhead = max(e0 - per_byte * s0, 0.0)
            anchors.append(RatioAnchor(ratio=r0, overhead_ns=overhead,
                                       per_byte_ns=per_byte))
        # Collapse duplicate achieved ratios (devices that ignore the
        # compressibility axis, e.g. the CPU cost model).
        deduped: dict[float, RatioAnchor] = {}
        for anchor in anchors:
            deduped[round(anchor.ratio, 4)] = anchor
        pre_overhead, pre_per_byte = _fit_linear(pre_points)
        post_overhead, post_per_byte = _fit_linear(post_points)
        return cls(
            anchors=list(deduped.values()),
            submit_ns=max(submit_samples),
            pre_overhead_ns=pre_overhead,
            pre_per_byte_ns=pre_per_byte,
            post_overhead_ns=post_overhead,
            post_per_byte_ns=post_per_byte,
        )


class CostTable:
    """Precomputed lookup over a :class:`DeviceCostModel`.

    The dispatch hot path predicts a cost for every candidate device on
    every request; with workload generators drawing sizes from a small
    fixed palette, those predictions endlessly recompute the same
    handful of linear fits.  A ``CostTable`` caches, per request size,
    the size-dependent terms (submit/pre/post budgets and the engine
    occupancy at each calibration anchor) and finishes a prediction
    with only the ratio interpolation.

    Every arithmetic expression is copied verbatim from
    :meth:`DeviceCostModel.predict` / ``_engine_ns`` and evaluated in
    the same order on the same doubles, so ``table.predict(n, r)`` is
    **bit-identical** to ``model.predict(n, r)`` — the byte-identity
    bar of the golden-run tests holds with tables on or off.

    One table per (device-kind, op) is built at cluster assembly and
    shared across identical fleet members (they share the calibrated
    model too), so the row cache warms once for the whole fleet.
    """

    __slots__ = ("model", "_rows")

    def __init__(self, model: DeviceCostModel) -> None:
        self.model = model
        #: nbytes -> (submit, pre, post, anchor ratios, anchor engines)
        self._rows: dict[int, tuple[float, float, float,
                                    tuple[float, ...],
                                    tuple[float, ...]]] = {}

    def _build_row(self, nbytes: int) -> tuple:
        if nbytes <= 0:
            raise ServiceError(f"request size must be > 0, got {nbytes}")
        model = self.model
        anchors = model.anchors
        row = (
            max(model.submit_ns, 0.0),
            max(model.pre_overhead_ns
                + model.pre_per_byte_ns * nbytes, 0.0),
            max(model.post_overhead_ns
                + model.post_per_byte_ns * nbytes, 0.0),
            tuple(anchor.ratio for anchor in anchors),
            tuple(anchor.overhead_ns + anchor.per_byte_ns * nbytes
                  for anchor in anchors),
        )
        self._rows[nbytes] = row
        return row

    def predict(self, nbytes: int, ratio: float = 1.0) -> ModeledCost:
        row = self._rows.get(nbytes)
        if row is None:
            row = self._build_row(nbytes)
        submit_ns, pre_ns, post_ns, ratios, engines = row
        if ratio <= ratios[0]:
            engine = engines[0]
        elif ratio >= ratios[-1]:
            engine = engines[-1]
        else:
            engine = engines[-1]
            for index in range(len(ratios) - 1):
                low = ratios[index]
                high = ratios[index + 1]
                if low <= ratio <= high:
                    span = high - low
                    weight = (ratio - low) / span if span > 0 else 0.0
                    engine = (engines[index] * (1 - weight)
                              + engines[index + 1] * weight)
                    break
        return ModeledCost(submit_ns, pre_ns, max(engine, 1.0), post_ns)


def _fit_linear(points: list[tuple[int, float]]) -> tuple[float, float]:
    """Least-squares ``overhead + per_byte * size`` fit, clamped >= 0."""
    n = len(points)
    if n == 0:
        return 0.0, 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var == 0:
        return max(mean_y, 0.0), 0.0
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / var
    slope = max(slope, 0.0)
    return max(mean_y - slope * mean_x, 0.0), slope


def calibrated(devices: list[CdpuDevice], op: str = "compress",
               **kwargs) -> list[tuple[CdpuDevice, DeviceCostModel]]:
    """Pair each device with its calibrated cost model."""
    return [(device, DeviceCostModel.calibrate(device, op=op, **kwargs))
            for device in devices]


def calibrated_ops(
        devices: list[CdpuDevice],
        ops: tuple[str, ...] = ("compress", "decompress"),
        **kwargs) -> list[tuple[CdpuDevice, dict[str, DeviceCostModel]]]:
    """Pair each device with per-op cost models for mixed-op serving.

    The returned ``(device, {op: model})`` pairs plug straight into
    :class:`~repro.service.fleet.FleetDevice` /
    :func:`~repro.service.offload.run_offload_service`, so decompress
    requests are priced by a decompress-calibrated model instead of
    being silently costed as compress.
    """
    return [(device, {op: DeviceCostModel.calibrate(device, op=op, **kwargs)
                      for op in ops})
            for device in devices]
