"""Admission control: shed or spill when the fleet saturates.

The controller watches fleet utilization (in-flight requests over
aggregate queue capacity) at every submission.  Past
``spill_threshold`` new work is redirected to the CPU-software spill
device — trading the paper's hardware-offload latency win for
availability, exactly the fallback a production deployment keeps when
accelerators brown out.  Past ``shed_threshold`` requests are dropped
outright, bounding queueing delay for everything already admitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ServiceError


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    SPILL = "spill"
    SHED = "shed"


@dataclass
class AdmissionController:
    """Threshold-based admission over fleet utilization in [0, 1]."""

    spill_threshold: float = 0.70
    shed_threshold: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.spill_threshold <= self.shed_threshold:
            raise ServiceError(
                f"need 0 <= spill ({self.spill_threshold}) <= "
                f"shed ({self.shed_threshold})"
            )

    def decide(self, utilization: float) -> AdmissionDecision:
        if utilization >= self.shed_threshold:
            return AdmissionDecision.SHED
        if utilization >= self.spill_threshold:
            return AdmissionDecision.SPILL
        return AdmissionDecision.ADMIT
