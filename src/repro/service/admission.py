"""Admission control: shed or spill when the fleet saturates.

The controller is consulted by the
:class:`~repro.service.scheduler.SchedulerCore` at every submission
with the current fleet utilization (in-flight requests over *online*
queue capacity, so unplugged or draining devices tighten admission
automatically).  Past ``spill_threshold`` new work is redirected to
the CPU-software spill device — trading the paper's hardware-offload
latency win for availability, exactly the fallback a production
deployment keeps when accelerators brown out.  Past ``shed_threshold``
work is dropped outright, bounding queueing delay for everything
already admitted; under an SLO-aware policy the scheduler core turns
that drop into a *low-priority shed-first* eviction, absorbing the
overload with the most tolerant pending tier before touching the
arrival itself.

Utilization is smoothed with an exponentially-weighted moving average
before it is compared against the thresholds, so admission reacts to
sustained trends rather than the instantaneous fleet fill (a single
batched doorbell can spike the raw signal past a threshold for one
arrival).  ``ewma_alpha=1.0`` disables smoothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ServiceError


class AdmissionDecision(enum.Enum):
    ADMIT = "admit"
    SPILL = "spill"
    SHED = "shed"


@dataclass
class AdmissionController:
    """Threshold-based admission over smoothed fleet utilization.

    ``ewma_alpha`` is the weight of each new utilization sample:
    ``smoothed = alpha * sample + (1 - alpha) * smoothed``.  The first
    sample primes the average so a controller that starts under load
    does not ramp up from zero.
    """

    spill_threshold: float = 0.70
    shed_threshold: float = 0.95
    ewma_alpha: float = 1.0
    smoothed: float = field(default=0.0, init=False, repr=False)
    _primed: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.spill_threshold <= self.shed_threshold:
            raise ServiceError(
                f"need 0 <= spill ({self.spill_threshold}) <= "
                f"shed ({self.shed_threshold})"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ServiceError(
                f"ewma_alpha {self.ewma_alpha} outside (0, 1]"
            )

    def reset(self) -> None:
        """Forget smoothed state so the next sample primes afresh.

        Controllers are plain config plus EWMA state; sweeps reuse one
        instance across runs, so each new service resets it rather
        than inheriting the previous run's saturation level.
        """
        self.smoothed = 0.0
        self._primed = False

    def observe(self, utilization: float) -> float:
        """Fold one utilization sample into the EWMA and return it."""
        if not self._primed:
            self.smoothed = utilization
            self._primed = True
        else:
            self.smoothed = (self.ewma_alpha * utilization
                             + (1.0 - self.ewma_alpha) * self.smoothed)
        return self.smoothed

    def decide(self, utilization: float) -> AdmissionDecision:
        smoothed = self.observe(utilization)
        if smoothed >= self.shed_threshold:
            return AdmissionDecision.SHED
        if smoothed >= self.spill_threshold:
            return AdmissionDecision.SPILL
        return AdmissionDecision.ADMIT
