"""Fleet-side device wrapper: submission queue, batching, arbitration.

A :class:`FleetDevice` is one member of the offload fleet.  It bounds
the number of requests a device will hold (``queue_limit`` — the
backpressure surface the dispatcher and admission controller react to),
coalesces submissions into batches that share one doorbell, and serves
engine occupancy through the :mod:`repro.virt.qos` arbiters so the
multi-tenant scheduling behaviour of Figure 20 (shared-FIFO QAT vs
fair-scheduled DP-CSD) carries over into the service layer unchanged.

Fleet membership is dynamic: each device carries a lifecycle
:class:`DeviceState` (online → draining → offline, driven by the
:class:`~repro.service.control.FleetController`) and a ``speed_factor``
that models brown-out/power-cap derating — engine occupancy is scaled
by ``1 / speed_factor`` both in the served timing and in the response
estimates the placement policies consult, so dispatch adapts to a
derated device without being told.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.errors import ServiceError
from repro.hw.engine import CdpuDevice, Placement
from repro.service.model import CostTable, DeviceCostModel, ModeledCost
from repro.service.request import OffloadRequest
from repro.sim.engine import Simulator, Store
from repro.sim.stats import ThroughputTracker
from repro.telemetry import DISABLED
from repro.virt.qos import FairArbiter, FcfsArbiter, VfRequest


class DeviceState(enum.Enum):
    """Lifecycle of one fleet member."""

    ONLINE = "online"        # accepting and serving work
    DRAINING = "draining"    # serving in-flight work, accepting nothing
    OFFLINE = "offline"      # unplugged; holds no work


class Batcher:
    """Coalesces items into batches flushed on size or timeout.

    The first item into an empty buffer arms a flush timer; reaching
    ``batch_size`` flushes immediately.  A generation counter voids
    timers for batches that already flushed on size, so no wall-clock
    state or cancellation machinery is needed.
    """

    __slots__ = ("sim", "batch_size", "timeout_ns", "_flush_fn",
                 "_buffer", "_generation")

    def __init__(self, sim: Simulator, batch_size: int,
                 timeout_ns: float | None,
                 flush: Callable[[list], None]) -> None:
        if batch_size < 1:
            raise ServiceError(f"batch size must be >= 1, got {batch_size}")
        if timeout_ns is not None and timeout_ns < 0:
            raise ServiceError(f"negative batch timeout {timeout_ns}")
        self.sim = sim
        self.batch_size = batch_size
        self.timeout_ns = timeout_ns
        self._flush_fn = flush
        self._buffer: list = []
        self._generation = 0

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def add(self, item: Any) -> None:
        self._buffer.append(item)
        if len(self._buffer) >= self.batch_size:
            self.flush_now()
        elif len(self._buffer) == 1 and self.timeout_ns is not None:
            generation = self._generation
            self.sim.call_later(self.timeout_ns,
                                lambda: self._expire(generation))

    def _expire(self, generation: int) -> None:
        if generation == self._generation and self._buffer:
            self.flush_now()

    def flush_now(self) -> None:
        """Flush whatever is buffered (also used to drain at stream end)."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self._generation += 1
        self._flush_fn(batch)

    def drain_buffer(self) -> list:
        """Take the buffered items back without flushing them.

        Used when a device is unplugged mid-run: work that has not yet
        rung a doorbell can still migrate to another fleet member.  The
        generation bump voids any armed flush timer.
        """
        buffer, self._buffer = self._buffer, []
        self._generation += 1
        return buffer


@dataclass(slots=True)
class _Submission:
    """One queued request plus its predicted cost and completion hook."""

    request: OffloadRequest
    cost: ModeledCost
    on_complete: Callable[[OffloadRequest, "FleetDevice", ModeledCost],
                          None] | None
    #: When the request entered this device's queue (telemetry only).
    enqueue_ns: float = 0.0


class FleetDevice:
    """One device of the fleet, wrapped for service-level dispatch."""

    # "state" is a property backed by _state (with is_online as its
    # hot-path mirror), so it must not appear as a slot itself.
    __slots__ = ("sim", "device", "models", "_engines", "queue_limit",
                 "arbiter", "_vf_count", "batcher", "_batch_queue",
                 "cost_tables", "_state", "is_online", "speed_factor",
                 "inflight", "peak_inflight", "completed",
                 "batches_submitted", "backlog_ns", "throughput",
                 "_cost_cache", "telemetry")

    def __init__(self, sim: Simulator, device: CdpuDevice,
                 model: DeviceCostModel | dict[str, DeviceCostModel]
                 | None = None, *,
                 queue_limit: int | None = None,
                 batch_size: int = 1,
                 batch_timeout_ns: float | None = None,
                 fair_share_tenants: int | None = None) -> None:
        self.sim = sim
        self.device = device
        # Per-op cost models: a bare model is the compress model (the
        # historical calling convention); a dict supplies one model per
        # op so decompress requests are never priced off the compress
        # calibration.  Missing ops calibrate lazily on first use.
        if isinstance(model, dict):
            self.models = dict(model)
        elif model is not None:
            self.models = {"compress": model}
        else:
            self.models = {"compress": DeviceCostModel.calibrate(device)}
        engines = max(device.engine_count, 1)
        self._engines = engines
        if queue_limit is None:
            # Enough slack to keep every engine fed through transfer
            # phases without letting one device absorb the whole fleet's
            # backlog; never beyond the hardware queue ceiling.
            queue_limit = min(4 * engines + 16, device.queue_depth)
        if queue_limit < 1:
            raise ServiceError(f"queue limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        if fair_share_tenants:
            self.arbiter: FairArbiter | FcfsArbiter = FairArbiter(
                sim, engines, fair_share_tenants)
            self._vf_count: int | None = fair_share_tenants
        else:
            self.arbiter = FcfsArbiter(sim, engines, device.queue_depth)
            self._vf_count = None
        self.batcher = Batcher(sim, batch_size, batch_timeout_ns,
                               self._launch_batch)
        self._batch_queue = Store(sim)
        sim.spawn(self._submitter())
        #: Per-op precomputed cost tables (:class:`~repro.service.model.
        #: CostTable`), attached at cluster assembly and shared across
        #: identical fleet members; empty means predict off the live
        #: model.
        self.cost_tables: dict[str, CostTable] = {}
        self.state = DeviceState.ONLINE
        #: Brown-out/power-cap derating: fraction of nominal engine
        #: speed (1.0 = healthy).  Served engine occupancy and response
        #: estimates both scale by ``1 / speed_factor``.
        self.speed_factor = 1.0
        self.inflight = 0
        self.peak_inflight = 0
        self.completed = 0
        self.batches_submitted = 0
        #: Predicted engine-time backlog of everything in flight, in
        #: *healthy* (underated) engine-ns; the cost-model policy's
        #: queue-depth signal, scaled by the derate at estimate time.
        self.backlog_ns = 0.0
        self.throughput = ThroughputTracker()
        # One-slot prediction cache keyed by request identity: the
        # cost-model policy estimates every candidate right before the
        # winner is enqueued, so the enqueue predict is always a repeat.
        self._cost_cache: tuple[OffloadRequest, ModeledCost] | None = None
        #: Telemetry sink; the shared no-op unless the session wires a
        #: live one in (hot-path sites guard on ``telemetry.tracing``).
        self.telemetry = DISABLED

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def placement(self) -> Placement:
        return self.device.placement

    @property
    def model(self) -> DeviceCostModel:
        """The compress-path model (historical single-op accessor)."""
        return self.model_for("compress")

    def model_for(self, op: str) -> DeviceCostModel:
        """The cost model pricing ``op``, calibrating it on first use."""
        model = self.models.get(op)
        if model is None:
            model = DeviceCostModel.calibrate(self.device, op=op)
            self.models[op] = model
        return model

    # -- lifecycle -------------------------------------------------------------

    @property
    def state(self) -> DeviceState:
        return self._state

    @state.setter
    def state(self, value: DeviceState) -> None:
        # ``is_online`` is kept as a plain attribute so the dispatch
        # hot path (every policy filters the fleet per request) reads
        # it without a property call; the setter keeps it in sync with
        # the (rarely changed) lifecycle state.
        self._state = value
        self.is_online = value is DeviceState.ONLINE

    def set_speed(self, factor: float) -> None:
        """Derate (or restore) the device to ``factor`` of nominal speed."""
        if not 0.0 < factor <= 1.0:
            raise ServiceError(
                f"speed factor {factor} outside (0, 1]"
            )
        self.speed_factor = factor

    def drain(self) -> None:
        """Stop accepting new work; in-flight work keeps serving."""
        if self.state is DeviceState.ONLINE:
            self.state = DeviceState.DRAINING

    def set_online(self) -> None:
        self.state = DeviceState.ONLINE

    def set_offline(self) -> None:
        if self.inflight > 0:
            raise ServiceError(
                f"{self.name}: cannot go offline with {self.inflight} "
                f"requests in flight (drain first)"
            )
        self.state = DeviceState.OFFLINE

    def take_buffered(self) -> list[_Submission]:
        """Reclaim not-yet-doorbelled submissions for migration.

        Work sitting in the batch buffer has not reached the hardware,
        so an unplug can hand it back to the scheduler; anything past
        the doorbell completes on the draining device.  Reverses the
        enqueue-side accounting for each reclaimed submission.
        """
        submissions = self.batcher.drain_buffer()
        for submission in submissions:
            self.inflight -= 1
            self.backlog_ns = max(
                self.backlog_ns - submission.cost.engine_ns, 0.0)
        return submissions

    # -- dispatch interface ----------------------------------------------------

    def can_accept(self) -> bool:
        return self.is_online and self.inflight < self.queue_limit

    def _predict(self, request: OffloadRequest) -> ModeledCost:
        cached = self._cost_cache
        if cached is not None and cached[0] is request:
            return cached[1]
        # Calibration-table fast path: identical devices share one
        # precomputed table per op (attached at cluster assembly), so
        # the common case is a dict hit plus the ratio interpolation.
        # Derated devices fall back to the live model — the table is
        # built against nominal calibration.
        table = self.cost_tables.get(request.op)
        if table is not None and self.speed_factor == 1.0:
            cost = table.predict(request.nbytes, request.ratio)
        else:
            cost = self.model_for(request.op).predict(request.nbytes,
                                                      request.ratio)
        self._cost_cache = (request, cost)
        return cost

    def estimate_response_ns(self, request: OffloadRequest) -> float:
        """Predicted response time if the request were routed here now.

        Queue wait is the predicted engine backlog spread over the
        device's engines, plus this request's own phase budget — the
        cost-model policy minimizes exactly this quantity.  Engine
        terms are scaled by the current derate, so a browned-out device
        prices itself honestly and placement adapts.
        """
        cost = self._predict(request)
        engine_wait = (self.backlog_ns / self._engines
                       + cost.engine_ns) / self.speed_factor
        return (engine_wait + cost.submit_ns + cost.pre_ns + cost.post_ns)

    def enqueue(self, request: OffloadRequest,
                on_complete: Callable[[OffloadRequest, "FleetDevice",
                                       ModeledCost], None] | None = None
                ) -> None:
        if not self.can_accept():
            raise ServiceError(
                f"{self.name}: enqueue rejected "
                f"(state={self.state.value}, inflight={self.inflight}, "
                f"queue limit {self.queue_limit})"
            )
        cost = self._predict(request)
        self.inflight += 1
        self.peak_inflight = max(self.peak_inflight, self.inflight)
        self.backlog_ns += cost.engine_ns
        now = self.sim.now
        tel = self.telemetry
        if tel.tracing:
            # Scheduler-side wait: admission stamp to device entry.
            # Every routing path (dispatch, pump, spill, migrate) funnels
            # through here, so this one span covers them all.
            tel.span("scheduler", "queue", request.arrival_ns, now, {
                "req": request.trace_id, "device": self.name,
            })
        self.batcher.add(_Submission(request, cost, on_complete,
                                     enqueue_ns=now))

    # -- simulation processes --------------------------------------------------

    def _launch_batch(self, batch: list[_Submission]) -> None:
        self.batches_submitted += 1
        self._batch_queue.put(batch)

    def _submitter(self) -> Generator[Any, Any, None]:
        # The submission path is serial per device: each batch rings the
        # doorbell once, so batching amortizes the ring across the batch
        # while back-to-back singleton submissions pay it every time.
        while True:
            batch = yield self._batch_queue.get()
            yield self.sim.timeout(max(s.cost.submit_ns for s in batch))
            for submission in batch:
                self.sim.spawn(self._serve(submission))

    def _serve(self, submission: _Submission) -> Generator[Any, Any, None]:
        cost = submission.cost
        entry_ns = self.sim.now
        if cost.pre_ns > 0:
            yield self.sim.timeout(cost.pre_ns)
        vf_index = (submission.request.tenant % self._vf_count
                    if self._vf_count else 0)
        # Derate sampled at engine-entry time: a brown-out mid-run slows
        # queued work too, exactly like a clock throttle would.
        engine_ns = cost.engine_ns / self.speed_factor
        yield self.arbiter.submit(VfRequest(
            vf_index=vf_index,
            nbytes=submission.request.nbytes,
            service_ns=engine_ns,
        ))
        if cost.post_ns > 0:
            yield self.sim.timeout(cost.post_ns)
        self.inflight -= 1
        self.backlog_ns = max(self.backlog_ns - cost.engine_ns, 0.0)
        self.completed += 1
        self.throughput.record(submission.request.nbytes, engine_ns)
        tel = self.telemetry
        if tel.tracing:
            request = submission.request
            # ``dispatch`` covers batching + the shared doorbell ring;
            # ``serve`` is the device's own pre/engine/post pipeline.
            tel.span(self.name, "dispatch", submission.enqueue_ns,
                     entry_ns, {"req": request.trace_id})
            tel.span(self.name, "serve", entry_ns, self.sim.now, {
                "req": request.trace_id, "op": request.op,
                "tenant": request.tenant,
            })
        if submission.on_complete is not None:
            submission.on_complete(submission.request, self, cost)
