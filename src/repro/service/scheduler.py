"""The control plane's scheduler core: dispatch, admission, SLOs.

:class:`SchedulerCore` owns every per-request control decision of the
offload service — the data plane (:class:`~repro.service.fleet.
FleetDevice`) only executes what the core dispatches:

* **admission** — the :class:`~repro.service.admission.
  AdmissionController` watches smoothed fleet utilization; past its
  thresholds the core spills to CPU software or sheds, shedding the
  *lowest-priority, latest-deadline* pending work first so overload is
  absorbed by the tiers that can stand it (the paper's multi-tenant
  priority result, Findings 9-10);
* **placement** — a pluggable :class:`~repro.service.policy.
  DispatchPolicy` picks the device among the *online* fleet members;
  the core filters out draining/offline devices so strategies stay
  oblivious to fleet reconfiguration;
* **dispatch order** — with an SLO-aware policy, requests that find no
  capacity wait in a bounded pending queue served earliest-deadline-
  first within each priority tier (EDF across equal tiers, strict
  priority across tiers).  With a flat policy the pending queue has
  zero length and the core degrades to the immediate
  dispatch-spill-shed behaviour the flat policies were built around;
* **SLO accounting** — every completion is checked against its
  request's :class:`~repro.service.request.SloClass` deadline, feeding
  the per-class deadline-miss rates in
  :class:`~repro.service.offload.ServiceReport`.

The core is also the re-entry point for dynamic fleet reconfiguration:
the :class:`~repro.service.control.FleetController` hands reclaimed
in-flight work to :meth:`migrate` and kicks :meth:`pump` whenever
membership or device speed changes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ServiceError
from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.fleet import FleetDevice, _Submission
from repro.service.model import ModeledCost
from repro.service.policy import DispatchPolicy
from repro.service.request import OffloadRequest, SloClass
from repro.sim.engine import Simulator
from repro.sim.stats import KeyedLatencyRecorder, LatencyRecorder
from repro.telemetry import DISABLED

#: Pending-queue depth an SLO-aware policy gets when none is specified.
DEFAULT_PENDING_LIMIT = 64

CompletionHook = Callable[[OffloadRequest, FleetDevice, ModeledCost], None]
DropHook = Callable[[OffloadRequest], None]


@dataclass(slots=True)
class SloStats:
    """Per-SLO-class outcome counters for one service run."""

    tier: int
    completed: int = 0
    missed: int = 0
    shed: int = 0
    #: Requests routed straight to the CPU spill path because every
    #: online device's predicted completion already blew the deadline.
    infeasible: int = 0

    @property
    def offered(self) -> int:
        return self.completed + self.shed

    @property
    def miss_rate(self) -> float:
        """Deadline-miss fraction; a shed request misses by definition."""
        if self.offered == 0:
            return 0.0
        return (self.missed + self.shed) / self.offered


@dataclass(slots=True)
class ServiceMetrics:
    """Counters and recorders accumulated over one service run."""

    offered: int = 0
    completed: int = 0
    spilled: int = 0
    shed: int = 0
    #: Requests reclaimed from an unplugged device and re-routed.
    migrated: int = 0
    completed_bytes: int = 0
    #: Bytes completed inside the measurement window (backlog drained
    #: after arrivals stop must not inflate goodput).
    window_bytes: int = 0
    overall: LatencyRecorder = field(default_factory=LatencyRecorder)
    #: Keyed by (tenant, placement value) — the Figure 20 breakdown.
    by_tenant_placement: KeyedLatencyRecorder = field(
        default_factory=KeyedLatencyRecorder)
    #: Keyed by (op, placement value) — where compress vs decompress
    #: traffic actually landed (the read-path placement question).
    by_op_placement: KeyedLatencyRecorder = field(
        default_factory=KeyedLatencyRecorder)
    #: Keyed by SLO-class name — the per-class latency distributions.
    by_slo: KeyedLatencyRecorder = field(
        default_factory=KeyedLatencyRecorder)
    #: Per-SLO-class deadline/shed counters, keyed by class name.
    slo: dict[str, SloStats] = field(default_factory=dict)

    def slo_stats(self, slo: SloClass) -> SloStats:
        stats = self.slo.get(slo.name)
        if stats is None:
            stats = self.slo[slo.name] = SloStats(tier=slo.tier)
        return stats


@dataclass(slots=True)
class _PendingEntry:
    """One parked request awaiting capacity, with its hooks."""

    request: OffloadRequest
    on_complete: CompletionHook
    on_drop: DropHook | None
    cancelled: bool = False


class _CompletionChain:
    """Core accounting + caller hook + dispatch pump, in that order.

    A class (not a closure) so :meth:`SchedulerCore.migrate` can
    recover the caller's drop hook from a reclaimed submission.
    """

    __slots__ = ("core", "extra", "on_drop")

    def __init__(self, core: "SchedulerCore",
                 extra: CompletionHook | None,
                 on_drop: DropHook | None) -> None:
        self.core = core
        self.extra = extra
        self.on_drop = on_drop

    def __call__(self, request: OffloadRequest, device: FleetDevice,
                 cost: ModeledCost) -> None:
        self.core._record_completion(request, device, cost)
        if self.extra is not None:
            self.extra(request, device, cost)
        self.core.pump()


class SchedulerCore:  # repro-lint: disable=HOT001 -- Cluster.enable_profiling shadows submit/pump/_record_completion with instance attributes, which __slots__ forbids
    """Owns dispatch, admission and the SLO model for one service.

    ``devices`` is the live (mutable) fleet membership list, shared
    with the owning :class:`~repro.service.offload.OffloadService` and
    the :class:`~repro.service.control.FleetController`.
    """

    def __init__(self, sim: Simulator, devices: list[FleetDevice],
                 placement: DispatchPolicy, *,
                 admission: AdmissionController | None = None,
                 spill_device: FleetDevice | None = None,
                 pending_limit: int | None = None,
                 metrics: ServiceMetrics | None = None) -> None:
        self.sim = sim
        self.devices = devices
        self.placement = placement
        self.admission = admission
        self.spill_device = spill_device
        self.slo_aware = bool(getattr(placement, "slo_aware", False))
        if pending_limit is None:
            pending_limit = DEFAULT_PENDING_LIMIT if self.slo_aware else 0
        if pending_limit < 0:
            raise ServiceError(
                f"pending limit must be >= 0, got {pending_limit}"
            )
        self.pending_limit = pending_limit
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Telemetry sink; the shared no-op unless the session wires a
        #: live one in (hot-path sites guard on ``telemetry.tracing``).
        self.telemetry = DISABLED
        #: Completions at or before this instant count toward goodput;
        #: None counts everything.
        self.measure_until_ns: float | None = None
        #: Set when the arrival stream has ended: dispatches made while
        #: draining flush device batches immediately, because a partial
        #: batch on a timer-less device would otherwise never ring its
        #: doorbell (no further arrivals will top it up).
        self.drain_mode = False
        # EDF-within-tier pending queue: a heap keyed by
        # (priority tier, absolute deadline, arrival sequence), with
        # lazy deletion for shed-first evictions.
        self._heap: list[tuple[int, float, int, _PendingEntry]] = []
        self._pending_count = 0
        #: Cancelled (lazily deleted) entries still sitting in the
        #: heap; audited so eviction storms cannot let tombstones
        #: dominate and degrade every push/pop to O(dead + live).
        self._cancelled_count = 0
        self._sequence = itertools.count()

    # -- fleet state -----------------------------------------------------------

    def online_devices(self) -> list[FleetDevice]:
        return [d for d in self.devices if d.is_online]

    @property
    def pending(self) -> int:
        """Requests parked in the scheduler's pending queue."""
        return self._pending_count

    def utilization(self) -> float:
        """Fleet fill fraction: in-flight over *online* queue capacity.

        Draining devices still hold in-flight work but contribute no
        capacity, so unplugging or browning out part of the fleet
        raises utilization and the admission controller reacts without
        being told about the reconfiguration.
        """
        capacity = 0
        inflight = 0
        for device in self.devices:
            if device.is_online:
                capacity += device.queue_limit
            inflight += device.inflight
        if capacity <= 0:
            return 1.0
        return inflight / capacity

    # -- submission ------------------------------------------------------------

    def submit(self, request: OffloadRequest,
               on_complete: CompletionHook | None = None,
               on_drop: DropHook | None = None) -> str:
        """Route one request.

        Returns ``'admitted'`` (dispatched to a device), ``'queued'``
        (parked pending capacity), ``'spilled'`` or ``'shed'``.
        ``on_complete`` runs after the core's own completion
        accounting; ``on_drop`` runs if the request is shed — either
        now or later, when a pending request is evicted by
        higher-priority work.
        """
        request.arrival_ns = self.sim.now
        self.metrics.offered += 1
        tel = self.telemetry
        if tel.tracing:
            request.trace_id = tel.next_id()
        hook = _CompletionChain(self, on_complete, on_drop)
        outcome = None
        if self.admission is not None:
            decision = self.admission.decide(self.utilization())
            if decision is AdmissionDecision.SHED:
                # Low-priority shed-first: absorb the overload with
                # pending work from a strictly lower tier if any
                # exists; only shed the arrival itself when it *is*
                # the low-priority work.
                if not self._evict_below(request.slo.tier):
                    self._shed(request, on_drop)
                    outcome = "shed"
            elif decision is AdmissionDecision.SPILL:
                outcome = self._spill_or_shed(request, hook, on_drop)
        if outcome is None:
            outcome = self._dispatch_or_queue(request, hook, on_drop)
        if tel.tracing:
            tel.instant("scheduler", "admit", request.arrival_ns, {
                "req": request.trace_id, "outcome": outcome,
                "slo": request.slo.name, "tenant": request.tenant,
                "op": request.op, "nbytes": request.nbytes,
            })
        return outcome

    def _dispatch_or_queue(self, request: OffloadRequest,
                           hook: CompletionHook | None,
                           on_drop: DropHook | None) -> str:
        online = self.online_devices()
        if not online:
            # No online member means no completion will ever pump the
            # pending queue — parking would strand the request, so the
            # spill path is the only capacity left (same rule pump()
            # applies when the fleet vanishes under parked work).
            return self._spill_or_shed(request, hook, on_drop)
        if self._deadline_infeasible(request, online):
            # Every online device's predicted completion already blows
            # the deadline: burning fleet capacity on a guaranteed miss
            # starves work that could still make it, so route straight
            # to the CPU spill path (ROADMAP's deadline-feasibility
            # spill).  Only taken when the spill valve has room —
            # dispatching remains better than shedding.
            self.metrics.slo_stats(request.slo).infeasible += 1
            self.metrics.spilled += 1
            self.spill_device.enqueue(request, hook)
            return "spilled"
        device = self.placement.select(request, online)
        if device is not None and device.can_accept():
            device.enqueue(request, hook)
            return "admitted"
        # Backpressure: the chosen queue is full (or every queue is,
        # for the cost-model policies) — park the request if the
        # pending queue has room (making room by shedding strictly
        # lower-priority work if needed), else fall back to the CPU
        # spill path rather than block the open-loop arrival process.
        if (self._pending_count < self.pending_limit
                or self._evict_below(request.slo.tier)):
            self._push_pending(request, hook, on_drop)
            return "queued"
        return self._spill_or_shed(request, hook, on_drop)

    def _deadline_infeasible(self, request: OffloadRequest,
                             online: list[FleetDevice]) -> bool:
        """True when no online device can predictably make the deadline.

        Uses the same calibrated response estimates the cost-model
        policy minimizes (a device's one-slot prediction cache makes
        the follow-up ``select`` reuse these estimates).  Requests with
        no deadline, and fleets without a spill valve that can accept,
        skip the check — infeasibility only matters when there is a
        cheaper place to send the guaranteed miss.
        """
        spill = self.spill_device
        if (spill is None or not spill.can_accept()
                or math.isinf(request.slo.deadline_ns)):
            return False
        deadline = request.deadline_ns
        return all(self.sim.now + device.estimate_response_ns(request)
                   > deadline
                   for device in online)

    def _spill_or_shed(self, request: OffloadRequest,
                       hook: CompletionHook | None,
                       on_drop: DropHook | None) -> str:
        spill = self.spill_device
        if spill is not None and spill.can_accept():
            self.metrics.spilled += 1
            spill.enqueue(request, hook)
            return "spilled"
        self._shed(request, on_drop)
        return "shed"

    def _shed(self, request: OffloadRequest,
              on_drop: DropHook | None) -> None:
        self.metrics.shed += 1
        self.metrics.slo_stats(request.slo).shed += 1
        tel = self.telemetry
        if tel.tracing:
            tel.instant("scheduler", "shed", self.sim.now, {
                "req": request.trace_id, "slo": request.slo.name,
            })
        if on_drop is not None:
            on_drop(request)

    # -- pending queue ---------------------------------------------------------

    def _push_pending(self, request: OffloadRequest,
                      hook: CompletionHook | None,
                      on_drop: DropHook | None) -> None:
        entry = _PendingEntry(request, hook, on_drop)
        heapq.heappush(self._heap, (request.slo.tier, request.deadline_ns,
                                    next(self._sequence), entry))
        self._pending_count += 1
        tel = self.telemetry
        if tel.tracing:
            tel.instant("scheduler", "pend", self.sim.now, {
                "req": request.trace_id, "depth": self._pending_count,
            })

    def _peek_pending(self) -> _PendingEntry | None:
        while self._heap:
            entry = self._heap[0][3]
            if entry.cancelled:
                heapq.heappop(self._heap)
                self._cancelled_count -= 1
                continue
            return entry
        return None

    def _pop_pending(self) -> _PendingEntry | None:
        while self._heap:
            entry = heapq.heappop(self._heap)[3]
            if entry.cancelled:
                self._cancelled_count -= 1
                continue
            self._pending_count -= 1
            return entry
        return None

    def _compact_pending(self) -> None:
        """Rebuild the heap without tombstones once they dominate.

        Lazy deletion leaves cancelled entries in place; a sustained
        eviction storm (every overloaded arrival shedding a parked
        victim) would otherwise grow the heap without bound while the
        live pending count stays flat.  Rebuilding is O(live) and the
        trigger guarantees amortized O(1) per cancellation.
        """
        if (self._cancelled_count > 32
                and self._cancelled_count * 2 > len(self._heap)):
            self._heap = [item for item in self._heap
                          if not item[3].cancelled]
            heapq.heapify(self._heap)
            self._cancelled_count = 0

    def _evict_below(self, tier: int) -> bool:
        """Shed the worst pending entry from a tier strictly below.

        "Worst" is lowest priority first, then latest deadline — the
        work whose SLO is most tolerant of being dropped.  Returns
        False when nothing strictly lower-priority is pending.
        """
        victim: _PendingEntry | None = None
        victim_key: tuple | None = None
        for entry_tier, deadline, sequence, entry in self._heap:
            if entry.cancelled or entry_tier <= tier:
                continue
            key = (entry_tier, deadline, sequence)
            if victim_key is None or key > victim_key:
                victim, victim_key = entry, key
        if victim is None:
            return False
        victim.cancelled = True
        self._pending_count -= 1
        self._cancelled_count += 1
        self._compact_pending()
        self._shed(victim.request, victim.on_drop)
        return True

    def pump(self) -> None:
        """Dispatch pending work while capacity exists.

        Called on every completion and whenever the fleet controller
        changes membership or device speed.  Pending entries leave in
        (tier, deadline) order; if the whole fleet has gone offline the
        queue drains through the CPU-spill path instead of starving.
        """
        while self._pending_count:
            online = self.online_devices()
            if not online:
                entry = self._pop_pending()
                if entry is not None:
                    self._spill_or_shed(entry.request, entry.on_complete,
                                        entry.on_drop)
                continue
            entry = self._peek_pending()
            if entry is None:
                break
            device = self.placement.select(entry.request, online)
            if device is None or not device.can_accept():
                break
            self._pop_pending()
            device.enqueue(entry.request, entry.on_complete)
        if self.drain_mode:
            self.flush_batches()

    def flush_batches(self) -> None:
        """Ring every device's doorbell for whatever is batched."""
        for device in self.devices:
            device.batcher.flush_now()
        if self.spill_device is not None:
            self.spill_device.batcher.flush_now()

    # -- reconfiguration entry points ------------------------------------------

    def migrate(self, submissions: list[_Submission]) -> None:
        """Re-route work reclaimed from an unplugged device.

        Each submission keeps its original arrival stamp (time spent on
        the dead device counts against its deadline) and its completion
        chain, so caller hooks and SLO accounting survive the move;
        routing follows the same dispatch/park/spill cascade as a fresh
        arrival.
        """
        tel = self.telemetry
        for submission in submissions:
            self.metrics.migrated += 1
            if tel.tracing:
                tel.instant("scheduler", "migrate", self.sim.now, {
                    "req": submission.request.trace_id,
                })
            hook = submission.on_complete
            on_drop = (hook.on_drop
                       if isinstance(hook, _CompletionChain) else None)
            self._dispatch_or_queue(submission.request, hook, on_drop)
        if self.drain_mode:
            self.flush_batches()

    # -- completion accounting -------------------------------------------------

    def _record_completion(self, request: OffloadRequest,
                           device: FleetDevice,
                           cost: ModeledCost) -> None:
        metrics = self.metrics
        latency_ns = self.sim.now - request.arrival_ns
        metrics.completed += 1
        metrics.completed_bytes += request.nbytes
        if (self.measure_until_ns is None
                or self.sim.now <= self.measure_until_ns):
            metrics.window_bytes += request.nbytes
        metrics.overall.record(latency_ns)
        metrics.by_tenant_placement.record(
            (request.tenant, device.placement.value), latency_ns)
        metrics.by_op_placement.record(
            (request.op, device.placement.value), latency_ns)
        metrics.by_slo.record((request.slo.name,), latency_ns)
        stats = metrics.slo_stats(request.slo)
        stats.completed += 1
        missed = latency_ns > request.slo.deadline_ns
        if missed:
            stats.missed += 1
        tel = self.telemetry
        if tel.tracing:
            tel.instant("scheduler", "complete", self.sim.now, {
                "req": request.trace_id, "device": device.name,
                "lat_us": latency_ns / 1000.0, "missed": missed,
            })
