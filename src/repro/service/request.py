"""Request and open-loop stream types for the offload service.

The service layer works on *descriptors*, not payload bytes: a request
carries its size and an expected achieved compression ratio (the two
properties every device cost model keys on — Figures 8/9 for size,
Figure 12 for compressibility).  The functional datapath has already
been exercised during model calibration, so the DES loop stays fast
enough to serve millions of simulated requests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ServiceError


@dataclass
class OffloadRequest:
    """One compression offload request flowing through the service."""

    tenant: int
    nbytes: int
    #: Expected achieved compression ratio (compressed/original); 1.0
    #: means incompressible.  Drives the per-device degradation models.
    ratio: float = 0.5
    op: str = "compress"
    #: Stamped by the service when the request is submitted.
    arrival_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ServiceError(f"request size must be > 0, got {self.nbytes}")
        if not 0.0 <= self.ratio <= 1.0:
            raise ServiceError(f"ratio {self.ratio} outside [0, 1]")
        if self.op not in ("compress", "decompress"):
            raise ServiceError(f"unknown op {self.op!r}")


@dataclass
class OpenLoopStream:
    """Open-loop (arrival-rate driven) request stream specification.

    Arrivals are Poisson at the rate implied by ``offered_gbps`` over
    the mean request size; sizes, tenants and compressibility are drawn
    independently per request.  Everything is seeded — two streams with
    the same spec produce identical request sequences.
    """

    offered_gbps: float
    duration_ns: float
    tenants: int = 4
    request_sizes: tuple[int, ...] = (16384, 65536, 131072)
    ratio_range: tuple[float, float] = (0.30, 1.0)
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.offered_gbps <= 0:
            raise ServiceError(f"offered load must be > 0, "
                               f"got {self.offered_gbps}")
        if self.duration_ns <= 0:
            raise ServiceError("stream duration must be > 0")
        if self.tenants < 1:
            raise ServiceError("need at least one tenant")
        if not self.request_sizes:
            raise ServiceError("need at least one request size")

    @property
    def mean_request_bytes(self) -> float:
        return sum(self.request_sizes) / len(self.request_sizes)

    @property
    def mean_interarrival_ns(self) -> float:
        """Gap giving ``offered_gbps`` (bytes/ns) at the mean size."""
        return self.mean_request_bytes / self.offered_gbps

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def next_gap_ns(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_interarrival_ns)

    def make_request(self, rng: random.Random) -> OffloadRequest:
        low, high = self.ratio_range
        return OffloadRequest(
            tenant=rng.randrange(self.tenants),
            nbytes=rng.choice(self.request_sizes),
            ratio=rng.uniform(low, high),
        )
