"""Request, SLO-class and open-loop stream types for the offload service.

The service layer works on *descriptors*, not payload bytes: a request
carries its size and an expected achieved compression ratio (the two
properties every device cost model keys on — Figures 8/9 for size,
Figure 12 for compressibility).  The functional datapath has already
been exercised during model calibration, so the DES loop stays fast
enough to serve millions of simulated requests.

Requests additionally carry an :class:`SloClass` — a priority tier plus
a relative deadline budget — which the control plane
(:class:`~repro.service.scheduler.SchedulerCore`) uses for
deadline-aware dispatch and low-priority-first shedding, the serving
discipline behind the paper's multi-tenant results (Figure 20,
Findings 9-10).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ServiceError


@dataclass(frozen=True, slots=True)
class SloClass:
    """One service-level objective: a priority tier plus a deadline.

    ``tier`` orders classes for scheduling and shedding — *lower* tiers
    are more latency-critical; under overload the scheduler sheds the
    highest tier first.  ``deadline_ns`` is the relative
    (arrival-to-completion) latency budget; a completion later than
    ``arrival + deadline_ns`` counts as a deadline miss for the class.
    """

    name: str
    tier: int
    deadline_ns: float

    def __post_init__(self) -> None:
        if self.tier < 0:
            raise ServiceError(f"SLO tier must be >= 0, got {self.tier}")
        if not self.deadline_ns > 0:
            raise ServiceError(
                f"SLO deadline must be > 0, got {self.deadline_ns}"
            )


#: Latency-critical foreground traffic (e.g. a user-facing GET).
INTERACTIVE = SloClass("interactive", tier=0, deadline_ns=200_000.0)

#: Throughput-oriented background traffic (e.g. PUT packing, flushes).
THROUGHPUT = SloClass("throughput", tier=1, deadline_ns=2_000_000.0)

#: Scavenger work with no deadline to speak of; first to be shed.
BEST_EFFORT = SloClass("best-effort", tier=2, deadline_ns=math.inf)

#: Standard classes by name, for CLI flags and config files.
SLO_CLASSES: dict[str, SloClass] = {
    cls.name: cls for cls in (INTERACTIVE, THROUGHPUT, BEST_EFFORT)
}


def make_slo_class(name: str) -> SloClass:
    """Look up a standard SLO class by name."""
    if name not in SLO_CLASSES:
        raise ServiceError(
            f"unknown SLO class {name!r}; known: {sorted(SLO_CLASSES)}"
        )
    return SLO_CLASSES[name]


@dataclass(slots=True)
class OffloadRequest:
    """One compression offload request flowing through the service."""

    tenant: int
    nbytes: int
    #: Expected achieved compression ratio (compressed/original); 1.0
    #: means incompressible.  Drives the per-device degradation models.
    ratio: float = 0.5
    op: str = "compress"
    #: Service-level objective: priority tier + deadline budget.
    slo: SloClass = BEST_EFFORT
    #: Stamped by the service when the request is submitted.
    arrival_ns: float = 0.0
    #: Trace id linking this request's telemetry spans; -1 = untraced.
    #: Assigned in submission order, so ids are deterministic per run.
    trace_id: int = -1

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ServiceError(f"request size must be > 0, got {self.nbytes}")
        if not 0.0 <= self.ratio <= 1.0:
            raise ServiceError(f"ratio {self.ratio} outside [0, 1]")
        if self.op not in ("compress", "decompress"):
            raise ServiceError(f"unknown op {self.op!r}")

    @property
    def deadline_ns(self) -> float:
        """Absolute completion deadline (valid once ``arrival_ns`` set)."""
        return self.arrival_ns + self.slo.deadline_ns


@dataclass(slots=True)
class OpenLoopStream:
    """Open-loop (arrival-rate driven) request stream specification.

    Arrivals are Poisson at the rate implied by ``offered_gbps`` over
    the mean request size; sizes, tenants, compressibility and SLO
    classes are drawn independently per request.  Everything is seeded —
    two streams with the same spec produce identical request sequences.

    ``slo_mix`` assigns each request an :class:`SloClass` drawn from
    weighted ``(class, weight)`` pairs; ``None`` leaves every request at
    the :data:`BEST_EFFORT` default (the pre-SLO behaviour).
    """

    offered_gbps: float
    duration_ns: float
    tenants: int = 4
    request_sizes: tuple[int, ...] = (16384, 65536, 131072)
    ratio_range: tuple[float, float] = (0.30, 1.0)
    slo_mix: tuple[tuple[SloClass, float], ...] | None = None
    seed: int = 1234
    _slo_classes: tuple[SloClass, ...] = field(init=False, repr=False,
                                               default=())
    _slo_weights: tuple[float, ...] = field(init=False, repr=False,
                                            default=())

    def __post_init__(self) -> None:
        if self.offered_gbps <= 0:
            raise ServiceError(f"offered load must be > 0, "
                               f"got {self.offered_gbps}")
        if self.duration_ns <= 0:
            raise ServiceError("stream duration must be > 0")
        if self.tenants < 1:
            raise ServiceError("need at least one tenant")
        if not self.request_sizes:
            raise ServiceError("need at least one request size")
        if self.slo_mix is not None:
            if not self.slo_mix:
                raise ServiceError("slo_mix must not be empty")
            if any(weight <= 0 for _, weight in self.slo_mix):
                raise ServiceError("slo_mix weights must be > 0")
            self._slo_classes = tuple(cls for cls, _ in self.slo_mix)
            self._slo_weights = tuple(w for _, w in self.slo_mix)

    @property
    def mean_request_bytes(self) -> float:
        return sum(self.request_sizes) / len(self.request_sizes)

    @property
    def mean_interarrival_ns(self) -> float:
        """Gap giving ``offered_gbps`` (bytes/ns) at the mean size."""
        return self.mean_request_bytes / self.offered_gbps

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def next_gap_ns(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_interarrival_ns)

    def make_request(self, rng: random.Random) -> OffloadRequest:
        low, high = self.ratio_range
        slo = BEST_EFFORT
        if self._slo_classes:
            slo = rng.choices(self._slo_classes,
                              weights=self._slo_weights)[0]
        return OffloadRequest(
            tenant=rng.randrange(self.tenants),
            nbytes=rng.choice(self.request_sizes),
            ratio=rng.uniform(low, high),
            slo=slo,
        )
