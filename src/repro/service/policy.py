"""Pluggable placement/dispatch policies for the offload service.

Each policy answers one question per request: *which fleet device
should serve this?*  The four built-ins span the paper's placement
discussion (§4-§5): static pinning and round-robin are the
placement-oblivious baselines, shortest-queue reacts to congestion
only, and the cost-model policy folds the per-placement latency
budgets exposed by ``service_profile()`` together with current queue
depth and the request's size/compressibility — the profiling-driven
placement choice the paper argues for.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ServiceError
from repro.service.fleet import FleetDevice
from repro.service.request import OffloadRequest


class DispatchPolicy:
    """Chooses a fleet device for each request (or None to decline)."""

    name = "policy"

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        raise NotImplementedError


class StaticPinning(DispatchPolicy):
    """Tenant i is pinned to device ``i % len(fleet)`` forever.

    The "one tenant, one device" deployment the paper's multi-tenant
    section starts from; no feedback, so a tenant pinned to a slow or
    congested placement stays there.
    """

    name = "static"

    def __init__(self, mapping: dict[int, int] | None = None) -> None:
        self.mapping = mapping or {}

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        index = self.mapping.get(request.tenant,
                                 request.tenant % len(devices))
        return devices[index % len(devices)]


class RoundRobin(DispatchPolicy):
    """Requests cycle through the fleet regardless of state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        device = devices[self._cursor % len(devices)]
        self._cursor += 1
        return device


class ShortestQueue(DispatchPolicy):
    """Join-the-shortest-queue on in-flight request count."""

    name = "shortest-queue"

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        # min() keeps the first of tied devices, so ties break by
        # fleet order deterministically.
        return min(devices, key=lambda d: d.inflight)


class CostModelPolicy(DispatchPolicy):
    """Minimize predicted response time per request.

    Each candidate's estimate combines its calibrated phase budget for
    *this* request's size and compressibility with its current engine
    backlog (see :meth:`FleetDevice.estimate_response_ns`).  Devices at
    their queue limit are excluded so backpressure turns into re-routing
    instead of blocking.
    """

    name = "cost-model"

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        candidates = [d for d in devices if d.can_accept()]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda d: d.estimate_response_ns(request))


POLICIES = {
    StaticPinning.name: StaticPinning,
    RoundRobin.name: RoundRobin,
    ShortestQueue.name: ShortestQueue,
    CostModelPolicy.name: CostModelPolicy,
}


def make_policy(name: str) -> DispatchPolicy:
    """Fresh policy instance by name (policies carry per-run state)."""
    if name not in POLICIES:
        raise ServiceError(
            f"unknown dispatch policy {name!r}; known: {sorted(POLICIES)}"
        )
    return POLICIES[name]()
