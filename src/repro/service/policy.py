"""Pluggable placement strategies for the offload control plane.

Each policy answers one question per request: *which fleet device
should serve this?*  Policies are placement strategies under the
:class:`~repro.service.scheduler.SchedulerCore` — the core owns
admission, dispatch order (EDF within an SLO tier) and shedding, and
consults the installed policy only for the placement choice itself.

The four flat built-ins span the paper's placement discussion (§4-§5):
static pinning and round-robin are the placement-oblivious baselines,
shortest-queue reacts to congestion only, and the cost-model policy
folds the per-placement latency budgets exposed by
``service_profile()`` together with current queue depth and the
request's size/compressibility — the profiling-driven placement choice
the paper argues for.  The ``deadline`` policy keeps cost-model
placement but flags itself ``slo_aware``, switching the scheduler core
into deadline-aware dispatch (EDF within tier, low-priority shed-first
on overload).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PolicyLookupError, ServiceError
from repro.service.fleet import FleetDevice
from repro.service.request import OffloadRequest


class DispatchPolicy:
    """Chooses a fleet device for each request (or None to decline).

    ``select`` only ever sees the *online* fleet members — the
    scheduler core filters out draining/offline devices before
    consulting the policy, so strategies stay oblivious to fleet
    reconfiguration.
    """

    name = "policy"
    #: True switches the scheduler core into deadline-aware dispatch
    #: (pending queue, EDF within tier, low-priority shed-first).
    slo_aware = False

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        raise NotImplementedError


class StaticPinning(DispatchPolicy):
    """Tenant i is pinned to device ``i % len(fleet)`` forever.

    The "one tenant, one device" deployment the paper's multi-tenant
    section starts from; no feedback, so a tenant pinned to a slow or
    congested placement stays there.

    With an explicit ``mapping``, every tenant must be mapped: an
    unmapped tenant raises instead of silently falling back to the
    modulo default (a typo'd tenant id landing on an arbitrary device
    is a misconfiguration, not a placement choice).  Mapping values may
    be device *names* — the only form stable under dynamic fleet
    membership — or indices into the current online fleet; an
    out-of-range index raises rather than wrapping onto an arbitrary
    survivor, and a pinned name that is not online declines the
    request (the scheduler's queue/spill/shed fallback takes over).
    """

    name = "static"

    def __init__(self, mapping: dict[int, int | str] | None = None) -> None:
        self.mapping = mapping or {}

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        if not self.mapping:
            return devices[request.tenant % len(devices)]
        target = self.mapping.get(request.tenant)
        if target is None:
            raise ServiceError(
                f"static pinning has an explicit mapping but tenant "
                f"{request.tenant} is not in it (mapped tenants: "
                f"{sorted(self.mapping)})"
            )
        if isinstance(target, str):
            for device in devices:
                if device.name == target:
                    return device
            return None  # pinned device offline: decline, don't re-pin
        if not 0 <= target < len(devices):
            raise ServiceError(
                f"static pinning maps tenant {request.tenant} to device "
                f"index {target}, but only {len(devices)} devices are "
                f"online; pin by device name for reconfiguration-stable "
                f"mappings"
            )
        return devices[target]


class RoundRobin(DispatchPolicy):
    """Requests cycle through the fleet regardless of state."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        device = devices[self._cursor % len(devices)]
        self._cursor += 1
        return device


class ShortestQueue(DispatchPolicy):
    """Join-the-shortest-queue on in-flight request count."""

    name = "shortest-queue"

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        # min() keeps the first of tied devices, so ties break by
        # fleet order deterministically.
        return min(devices, key=lambda d: d.inflight)


class CostModelPolicy(DispatchPolicy):
    """Minimize predicted response time per request.

    Each candidate's estimate combines its calibrated phase budget for
    *this* request's size and compressibility with its current engine
    backlog and derating state (see
    :meth:`FleetDevice.estimate_response_ns`).  Devices at their queue
    limit are excluded so backpressure turns into re-routing instead of
    blocking.
    """

    name = "cost-model"

    def select(self, request: OffloadRequest,
               devices: Sequence[FleetDevice]) -> FleetDevice | None:
        # Explicit loop, not min(key=...): this runs once per request
        # and the lambda + candidate list were measurable.  Strict `<`
        # keeps the first of tied devices, so ties still break by fleet
        # order deterministically.
        best: FleetDevice | None = None
        best_ns = 0.0
        for device in devices:
            if device.can_accept():
                estimate = device.estimate_response_ns(request)
                if best is None or estimate < best_ns:
                    best = device
                    best_ns = estimate
        return best


class DeadlineAware(CostModelPolicy):
    """Cost-model placement under deadline-aware scheduling.

    Placement across tiers stays cost-model — the calibrated estimates
    already reflect brown-out derating and queue backlog — but the
    ``slo_aware`` flag switches the scheduler core into its SLO mode:
    requests that find no capacity wait in a pending queue served EDF
    within priority tier, and overload sheds the lowest-priority,
    latest-deadline pending work first instead of whatever arrived.
    """

    name = "deadline"
    slo_aware = True


POLICIES = {
    StaticPinning.name: StaticPinning,
    RoundRobin.name: RoundRobin,
    ShortestQueue.name: ShortestQueue,
    CostModelPolicy.name: CostModelPolicy,
    DeadlineAware.name: DeadlineAware,
}


def make_policy(name: str) -> DispatchPolicy:
    """Fresh policy instance by name (policies carry per-run state)."""
    if name not in POLICIES:
        raise PolicyLookupError(
            f"unknown dispatch policy {name!r}; valid policies: "
            f"{sorted(POLICIES)}"
        )
    return POLICIES[name]()
