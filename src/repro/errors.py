"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CompressionError(ReproError):
    """Raised when a compressor cannot encode the given input."""


class DecompressionError(ReproError):
    """Raised when a compressed payload is malformed or inconsistent."""


class BitstreamError(DecompressionError):
    """Raised on bit-level framing problems (overruns, bad padding)."""


class ConfigurationError(ReproError):
    """Raised when a model or device is configured inconsistently."""


class CapacityError(ReproError):
    """Raised when a device or FTL runs out of physical space."""


class SimulationError(ReproError):
    """Raised on discrete-event simulation misuse (e.g. time travel)."""


class SanitizerError(SimulationError):
    """Raised by the runtime simulation sanitizer
    (:mod:`repro.analyzers.runtime`) when an engine invariant breaks:
    time moving backwards, malformed heap entries, an event firing
    twice, callbacks registered after an event fired, or waiter queues
    left populated at run end."""


class AnalyzerError(ReproError):
    """Raised on static-analyzer misuse (unknown rule codes, unreadable
    lint targets)."""


class WorkloadError(ReproError):
    """Raised when a workload generator receives invalid parameters."""


class ServiceError(ReproError):
    """Raised on offload-service misuse (bad policy, queue overrun)."""


class PolicyLookupError(ServiceError, ValueError):
    """Raised when a dispatch-policy name matches no registered policy.

    Doubles as a :class:`ValueError` so callers that validate plain
    user input (CLI flags, config files) can catch it without importing
    the service error hierarchy.
    """


class FleetConfigError(ServiceError, ValueError):
    """Raised on invalid fleet composition (duplicate device names,
    non-positive queue depths).

    Doubles as a :class:`ValueError` for the same reason as
    :class:`PolicyLookupError`: fleet composition is user input.
    """


class ClusterError(ReproError):
    """Raised on cluster-session misuse (no clients, missing store)."""


class ClusterSpecError(ClusterError, ValueError):
    """Raised when a :class:`~repro.cluster.ClusterSpec` (or a dict/JSON
    document being deserialized into one) is invalid — unknown keys,
    unknown device kinds, out-of-range parameters.
    """


class SweepError(ReproError):
    """Raised on sweep-runner failures (a point's run raised, or every
    grid point was filtered away)."""


class SweepSpecError(SweepError, ValueError):
    """Raised when a :class:`~repro.sweep.SweepSpec` (or a dict/JSON
    document being deserialized into one) is invalid — unknown keys,
    duplicate axis names, filters naming unknown axes, or a grid point
    whose resolved spec fails validation.

    Doubles as a :class:`ValueError` for the same reason as
    :class:`ClusterSpecError`: sweep descriptions are user input.
    """


class FederationError(ReproError):
    """Raised on multi-cluster federation failures: assembling or
    driving a federated session, or errors on the distributed-dispatch
    socket protocol (see :class:`DispatchError`)."""


class FederationSpecError(FederationError, ValueError):
    """Raised when a :class:`~repro.federation.FederationSpec` (or a
    dict/JSON document being deserialized into one) is invalid —
    unknown keys, duplicate member names, member clusters declaring
    their own telemetry or store tiers, unknown routing policies.

    Doubles as a :class:`ValueError` for the same reason as
    :class:`ClusterSpecError`: federation descriptions are user input.
    """


class DispatchError(FederationError):
    """Raised by the distributed sweep dispatch layer
    (:mod:`repro.federation.dispatch`): truncated or malformed protocol
    frames, protocol-version mismatches, workers dying mid-point with
    the requeue budget exhausted, or every worker dead with grid points
    still unserved.  Never a bare :class:`EOFError` — a half-received
    frame is reported with the byte counts."""


class StoreError(ReproError):
    """Raised on block-store misuse (unmapped block, oversized write)."""


class TelemetryError(ReproError):
    """Raised on telemetry misuse (bad capacity or interval, duplicate
    gauge names) and by trace-document validation failures."""
