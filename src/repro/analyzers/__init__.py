"""Static analysis and runtime sanitization for the repro codebase.

Two complementary tools guard the determinism and hot-path contracts:

* :mod:`repro.analyzers.lint` — ``repro-lint``, an AST-based lint
  (``python -m repro.analyzers src/``) whose rules live in
  :mod:`repro.analyzers.rules`;
* :mod:`repro.analyzers.runtime` — :class:`SanitizedSimulator`, a
  drop-in :class:`~repro.sim.engine.Simulator` that validates engine
  invariants while preserving byte-identical results.
"""

from repro.analyzers.lint import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    lint_paths,
    lint_source,
    main,
    render_json,
    render_text,
)
from repro.analyzers.rules import RULES, RawFinding, Rule
from repro.analyzers.runtime import SanitizedSimulator, sanitize_from_env

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "RULES",
    "RawFinding",
    "Rule",
    "SanitizedSimulator",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
    "sanitize_from_env",
]
