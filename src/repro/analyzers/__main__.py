"""``python -m repro.analyzers`` — run the ``repro-lint`` CLI."""

import sys

from repro.analyzers.lint import main

sys.exit(main())
