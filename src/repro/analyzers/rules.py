"""The ``repro-lint`` rule set: determinism and hot-path contracts.

Every rule is a pure function over one module's AST (plus the file's
repo-relative path and the active :class:`~repro.analyzers.lint.
LintConfig`), registered in :data:`RULES` by code.  Rules exist to
mechanize the contracts PRs 5-8 established by example:

========  ==================================================================
DET001    wall-clock reads (``time.time``/``monotonic``/``perf_counter``/
          ``datetime.now``) in sim-visible code — simulated components must
          take time from ``Simulator.now``
DET002    module-global randomness (``random.random()``, ``numpy.random``)
          instead of seeded ``random.Random`` streams
DET003    iteration over ``set``s whose order can reach scheduling, heap
          pushes or serialized output, without an intervening ``sorted()``
DET004    ``id()``/default-``hash`` ordering or tie-breaks (sort keys, heap
          entries) — identity is not stable across runs or processes
HOT001    classes in declared hot-path modules without ``__slots__`` (or
          ``@dataclass(slots=True)``)
SPEC001   ``from_dict`` implementations in spec modules that do not reject
          unknown keys (no ``_check_keys``-style call)
PKL001    lambdas/closures stored on ``self`` in modules whose objects
          cross the ``SweepRunner`` pickle boundary
========  ==================================================================

False positives are expected to be rare and are silenced per line with
``# repro-lint: disable=CODE -- reason`` (the reason is mandatory; see
:mod:`repro.analyzers.lint`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

__all__ = ["RULES", "Rule", "RawFinding"]


@dataclass(frozen=True, slots=True)
class RawFinding:
    """One rule hit before suppression handling: location + message."""

    line: int
    col: int
    message: str


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    description: str
    #: ``scope(relpath, config) -> bool`` — whether the rule runs on a
    #: file (``None`` = every file).
    scope: Callable | None
    check: Callable[[ast.Module, str, object], Iterable[RawFinding]]


RULES: dict[str, Rule] = {}


def _register(code: str, name: str, description: str,
              scope: Callable | None = None):
    def wrap(fn):
        RULES[code] = Rule(code=code, name=name, description=description,
                           scope=scope, check=fn)
        return fn
    return wrap


# -- shared AST helpers --------------------------------------------------------


def _attr_chain(node: ast.AST) -> str | None:
    """``a.b.c`` as a dotted string, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module, module: str) -> set[str]:
    """Local names ``module`` is importable under (``import x as y``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module \
                and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


def _parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    links: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            links[child] = node
    return links


# -- DET001: wall-clock calls --------------------------------------------------

#: ``time`` module functions that read the host clock.
_WALLCLOCK_TIME = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns", "clock_gettime", "clock_gettime_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


def _det001_scope(relpath: str, config) -> bool:
    return not config.matches(relpath, config.wallclock_allowlist)


@_register(
    "DET001", "wall-clock-call",
    "host-clock read in sim-visible code; simulated components must "
    "derive time from Simulator.now so two runs of one seed are "
    "byte-identical",
    scope=_det001_scope,
)
def _det001(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    time_aliases = _import_aliases(tree, "time")
    datetime_aliases = _import_aliases(tree, "datetime")
    from_time = {local for local, orig in _from_imports(tree, "time").items()
                 if orig in _WALLCLOCK_TIME}
    datetime_classes = {
        local for local, orig in _from_imports(tree, "datetime").items()
        if orig in ("datetime", "date")
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        called = None
        if isinstance(func, ast.Name) and func.id in from_time:
            called = f"time.{func.id}"
        elif isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is None:
                continue
            head, _, rest = chain.partition(".")
            if head in time_aliases and rest in _WALLCLOCK_TIME:
                called = f"time.{rest}"
            elif func.attr in _WALLCLOCK_DATETIME:
                base = chain.rsplit(".", 1)[0]
                base_head = base.split(".")[0]
                if base_head in datetime_aliases \
                        or base in datetime_classes:
                    called = chain
        if called is not None:
            yield RawFinding(
                node.lineno, node.col_offset,
                f"wall-clock call {called}() in sim-visible code; use "
                f"the simulator's virtual clock (Simulator.now) or move "
                f"the measurement behind the wall-clock allowlist",
            )


# -- DET002: unseeded / global randomness --------------------------------------

#: ``random.Random``-family constructors that are fine to touch on the
#: module (a seeded stream is the whole point).
_RANDOM_OK = frozenset({"Random", "SystemRandom"})


@_register(
    "DET002", "global-randomness",
    "module-global randomness (random.*, numpy.random global) instead "
    "of a seeded random.Random stream; global state makes draw order "
    "depend on unrelated code",
)
def _det002(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    random_aliases = _import_aliases(tree, "random")
    numpy_aliases = _import_aliases(tree, "numpy")
    from_random = {
        local for local, orig in _from_imports(tree, "random").items()
        if orig not in _RANDOM_OK
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in from_random:
            yield RawFinding(
                node.lineno, node.col_offset,
                f"{func.id}() drawn from the process-global random "
                f"stream; draw from a seeded random.Random instead",
            )
            continue
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        if isinstance(value, ast.Name) and value.id in random_aliases \
                and func.attr not in _RANDOM_OK:
            yield RawFinding(
                node.lineno, node.col_offset,
                f"random.{func.attr}() uses the process-global stream; "
                f"draw from a seeded random.Random instead",
            )
        elif isinstance(value, ast.Attribute) and value.attr == "random" \
                and isinstance(value.value, ast.Name) \
                and value.value.id in numpy_aliases:
            yield RawFinding(
                node.lineno, node.col_offset,
                f"numpy.random.{func.attr}() uses numpy's global "
                f"generator; use numpy.random.Generator seeded per "
                f"stream (default_rng(seed)) instead",
            )


# -- DET003: unsorted set iteration --------------------------------------------

#: Builtins whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset({
    "sum", "min", "max", "len", "any", "all", "set", "frozenset",
    "sorted",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})


class _SetFlow(ast.NodeVisitor):
    """In-order, scope-aware tracking of set-valued names.

    Statements are processed in source order with one binding frame per
    function scope (reads fall through to enclosing frames, Python
    style), so both of the clean idioms the codebase relies on stay
    clean: rebinding a set to its sorted form (``s = sorted(s)``) ends
    its set life, and a set binding in one function never poisons a
    same-named variable in a sibling function.
    """

    def __init__(self, parents: dict[ast.AST, ast.AST]) -> None:
        #: name -> is-set, innermost frame last.
        self.frames: list[dict[str, bool]] = [{}]
        self.parents = parents
        self.findings: list[RawFinding] = []

    # -- binding frames --------------------------------------------------------

    def _lookup(self, name: str) -> bool:
        for frame in reversed(self.frames):
            if name in frame:
                return frame[name]
        return False

    def _bind(self, target: ast.AST, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            self.frames[-1][target.id] = is_set

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self.is_set_expr(node.left) \
                or self.is_set_expr(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) \
                    and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) \
                    and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
        return False

    # -- statements ------------------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self.frames.append({})
        for stmt in node.body:
            self.visit(stmt)
        self.frames.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        is_set = self.is_set_expr(node.value)
        for target in node.targets:
            self._bind(target, is_set)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._bind(node.target, self.is_set_expr(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        if self.is_set_expr(node.value):
            self._bind(node.target, True)

    # -- iteration sites -------------------------------------------------------

    def _flag(self, node: ast.expr, how: str) -> None:
        self.findings.append(RawFinding(
            node.lineno, node.col_offset,
            f"{how} iterates a set in hash order; wrap it in sorted() "
            f"(or prove the consumer is order-insensitive and suppress "
            f"with a reason)",
        ))

    def _consumed_order_insensitively(self, node: ast.AST) -> bool:
        """A comprehension/genexp whose result ignores element order."""
        if isinstance(node, ast.SetComp):
            return True
        parent = self.parents.get(node)
        return isinstance(node, (ast.GeneratorExp, ast.ListComp)) \
            and isinstance(parent, ast.Call) \
            and isinstance(parent.func, ast.Name) \
            and parent.func.id in _ORDER_INSENSITIVE

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        if self.is_set_expr(node.iter):
            self._flag(node.iter, "for loop")
        self._bind(node.target, False)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_comprehension(self, node) -> None:
        flaggable = not self._consumed_order_insensitively(node)
        for generator in node.generators:
            self.visit(generator.iter)
            if flaggable and self.is_set_expr(generator.iter):
                self._flag(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # list(s) / tuple(s) / enumerate(s) / sep.join(s): the set
        # order is serialized directly into an ordered container or
        # string.
        if isinstance(func, ast.Name) and func.id in ("list", "tuple",
                                                      "enumerate"):
            if node.args and self.is_set_expr(node.args[0]):
                self._flag(node.args[0], f"{func.id}()")
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args and self.is_set_expr(node.args[0]):
                self._flag(node.args[0], "str.join()")
        self.generic_visit(node)


@_register(
    "DET003", "unsorted-set-iteration",
    "iterating a set without sorted(); set order is hash-dependent and "
    "must not reach scheduling decisions, heap pushes or serialized "
    "output",
)
def _det003(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    flow = _SetFlow(_parents(tree))
    flow.visit(tree)
    yield from flow.findings


# -- DET004: id()/hash ordering ------------------------------------------------

_ORDERING_CALLS = frozenset({"sorted", "min", "max", "heappush",
                             "heapify", "heappushpop", "sort"})


@_register(
    "DET004", "identity-ordering",
    "id()/default hash() used in an ordering context (sort key, heap "
    "entry, min/max tie-break); object identity varies across runs and "
    "processes",
)
def _det004(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    def contains_identity(node: ast.AST) -> ast.Call | None:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) \
                    and isinstance(inner.func, ast.Name) \
                    and inner.func.id in ("id", "hash"):
                return inner
        return None

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name not in _ORDERING_CALLS:
            continue
        suspects: list[ast.AST] = list(node.args)
        for keyword in node.keywords:
            if keyword.arg == "key":
                # ``key=id`` / ``key=hash`` passed as bare callables.
                value = keyword.value
                if isinstance(value, ast.Name) \
                        and value.id in ("id", "hash"):
                    yield RawFinding(
                        value.lineno, value.col_offset,
                        f"{name}(key={value.id}) orders by object "
                        f"identity, which differs between runs; order "
                        f"by a stable field instead",
                    )
                    continue
                suspects.append(value)
        for suspect in suspects:
            hit = contains_identity(suspect)
            if hit is not None:
                yield RawFinding(
                    hit.lineno, hit.col_offset,
                    f"{hit.func.id}() inside a {name}() ordering "
                    f"expression ties ordering to object identity, "
                    f"which differs between runs; use a stable "
                    f"sequence number or field instead",
                )


# -- HOT001: hot-path classes without __slots__ --------------------------------

#: Base-class names that exempt a class (enums and exceptions carry
#: class machinery that __slots__ does not mix with usefully).
_HOT_EXEMPT_BASES = ("Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
                     "Exception", "Error", "Protocol", "ABC")


def _hot001_scope(relpath: str, config) -> bool:
    return config.matches(relpath, config.hot_path_modules)


def _dataclass_slots(decorator: ast.AST) -> bool | None:
    """True/False when ``decorator`` is dataclass(with/without slots);
    None when it is not a dataclass decorator at all."""
    if isinstance(decorator, ast.Call):
        target = decorator.func
    else:
        target = decorator
    name = target.id if isinstance(target, ast.Name) else (
        target.attr if isinstance(target, ast.Attribute) else None)
    if name != "dataclass":
        return None
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if keyword.arg == "slots":
                return bool(isinstance(keyword.value, ast.Constant)
                            and keyword.value.value)
    return False


@_register(
    "HOT001", "hot-path-slots",
    "class in a declared hot-path module without __slots__ (or "
    "@dataclass(slots=True)); per-instance dicts cost allocation and "
    "cache misses on every simulated request",
    scope=_hot001_scope,
)
def _hot001(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        base_names = []
        for base in node.bases:
            chain = _attr_chain(base)
            if chain is not None:
                base_names.append(chain.rsplit(".", 1)[-1])
        if any(base.endswith(exempt) for base in base_names
               for exempt in _HOT_EXEMPT_BASES):
            continue
        slotted = any(
            isinstance(stmt, ast.Assign) and any(
                isinstance(target, ast.Name)
                and target.id == "__slots__"
                for target in stmt.targets)
            for stmt in node.body
        )
        if not slotted:
            for decorator in node.decorator_list:
                verdict = _dataclass_slots(decorator)
                if verdict:
                    slotted = True
                    break
        if not slotted:
            yield RawFinding(
                node.lineno, node.col_offset,
                f"class {node.name} in hot-path module {relpath} has no "
                f"__slots__; declare __slots__ (or "
                f"@dataclass(slots=True)), or suppress with the reason "
                f"it must stay dict-based",
            )


# -- SPEC001: from_dict without unknown-key rejection --------------------------

_CHECK_KEYS_PATTERNS = ("check_keys", "reject_unknown", "unknown_keys")


def _spec001_scope(relpath: str, config) -> bool:
    return config.matches(relpath, config.spec_modules)


@_register(
    "SPEC001", "lenient-from-dict",
    "from_dict in a spec module without unknown-key rejection; a typo "
    "in a JSON document must raise, not silently fall back to defaults",
    scope=_spec001_scope,
)
def _spec001(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                or node.name != "from_dict":
            continue
        strict = False
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            name = None
            if isinstance(inner.func, ast.Name):
                name = inner.func.id
            elif isinstance(inner.func, ast.Attribute):
                name = inner.func.attr
            if name is None:
                continue
            lowered = name.lower()
            if any(pattern in lowered
                   for pattern in _CHECK_KEYS_PATTERNS):
                strict = True
                break
            if name == "from_dict":
                # Pure delegation inherits the callee's strictness.
                strict = True
                break
        if not strict:
            yield RawFinding(
                node.lineno, node.col_offset,
                "from_dict does not reject unknown keys; call the "
                "module's _check_keys(cls, data) (or equivalent) so "
                "misspelled document keys raise instead of vanishing",
            )


# -- PKL001: closures stored across the pickle boundary ------------------------


def _pkl001_scope(relpath: str, config) -> bool:
    return config.matches(relpath, config.pickle_modules)


@_register(
    "PKL001", "closure-on-pickled-object",
    "lambda/closure stored on self in a module whose objects cross the "
    "SweepRunner pickle boundary; pickling will fail (or silently "
    "capture live simulator state)",
    scope=_pkl001_scope,
)
def _pkl001(tree: ast.Module, relpath: str, config) -> Iterator[RawFinding]:
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            stmt.name for stmt in ast.walk(scope)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not scope
        }
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            stored_on_self = any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in node.targets
            )
            if not stored_on_self:
                continue
            value = node.value
            if isinstance(value, ast.Lambda):
                yield RawFinding(
                    value.lineno, value.col_offset,
                    "lambda stored on self cannot cross the "
                    "SweepRunner pickle boundary; use a module-level "
                    "function or a small __call__ class",
                )
            elif isinstance(value, ast.Name) and value.id in local_defs:
                yield RawFinding(
                    value.lineno, value.col_offset,
                    f"locally-defined function {value.id!r} stored on "
                    f"self is a closure and cannot cross the "
                    f"SweepRunner pickle boundary; hoist it to module "
                    f"level",
                )
