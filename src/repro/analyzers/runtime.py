"""Runtime simulation sanitizer: a :class:`Simulator` that checks its
own invariants while producing byte-identical results.

:class:`SanitizedSimulator` re-implements :meth:`Simulator.run` with
the exact same pop order and dispatch as the production kernel, adding
validation at each pop:

* **monotonic time** — popped timestamps never decrease and never fall
  behind the clock by more than the engine's own 1e-9 tolerance;
* **heap-entry discipline** — every queue entry is a
  ``(when, seq, item)`` triple with a numeric ``when``, an ``int``
  ``seq`` that is unique across the run, and an ``item`` that is an
  :class:`Event` or a bare callable;
* **event lifecycle** — an event fires exactly once, and its callback
  slot is empty immediately after firing and stays empty (late waiters
  must go through :meth:`Event.add_callback`, which schedules a fresh
  queue entry instead of mutating a fired event);
* **waiter-queue leaks** — at :meth:`finish`, no
  :class:`~repro.sim.engine.Resource` still has blocked acquirers, no
  :class:`~repro.sim.engine.Store` still holds undelivered items, and
  no QoS arbiter still has blocked virtual functions.  (Parked
  ``Store.get()`` waiters are fine — perpetual server loops end every
  run waiting for work that never comes.)

Validation happens at pop time inside the run loop, never by changing
what is scheduled or when, so a sanitized run's ``RunResult`` rows and
exported trace are byte-for-byte identical to a plain run — the golden
test asserts exactly that.

Enable it per run with ``Cluster.from_spec(spec, sanitize=True)``, the
``--sanitize`` CLI flag, or ``REPRO_SANITIZE=1`` in the environment.
"""

from __future__ import annotations

import os
from heapq import heappop
from typing import Any

from repro.errors import SanitizerError
from repro.sim.engine import Event, Simulator

__all__ = ["SanitizedSimulator", "sanitize_from_env"]

#: Environment values that turn the sanitizer on.
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_from_env(default: bool = False) -> bool:
    """Whether ``REPRO_SANITIZE`` asks for a sanitized simulator."""
    value = os.environ.get("REPRO_SANITIZE")
    if value is None:
        return default
    return value.strip().lower() in _TRUTHY


class SanitizedSimulator(Simulator):
    """Drop-in :class:`Simulator` with invariant checking.

    Construction is identical; :meth:`run` validates every queue entry
    it pops, and :meth:`finish` audits waiter queues after the driver
    has drained the run.  Components that want leak auditing register
    themselves via the ``_register_waitable`` hook (a plain
    :class:`Simulator` has no such attribute, so registration costs one
    failed ``getattr`` at construction time and nothing per event).
    """

    def __init__(self) -> None:
        super().__init__()
        self._seen_seqs: set[int] = set()
        #: Events fired in the current timestamp batch (checked and
        #: promoted to _fired_events at each batch boundary).
        self._batch_fired: list[Event] = []
        #: Every event fired this run (audited once more at finish()).
        self._fired_events: list[Event] = []
        self._waitables: list[Any] = []
        self.entries_checked = 0

    def _register_waitable(self, waitable: Any) -> None:
        """Called by Resource/Store/arbiter constructors (via getattr)."""
        self._waitables.append(waitable)

    # -- invariant helpers -----------------------------------------------------

    def _check_entry(self, entry: Any) -> None:
        if not (type(entry) is tuple and len(entry) == 3):
            raise SanitizerError(
                f"heap entry {entry!r} is not a (when, seq, item) triple"
            )
        when, seq, item = entry
        if not isinstance(when, (int, float)):
            raise SanitizerError(
                f"heap entry timestamp {when!r} is not a number"
            )
        if type(seq) is not int:
            raise SanitizerError(
                f"heap entry sequence {seq!r} is not an int"
            )
        if seq in self._seen_seqs:
            raise SanitizerError(
                f"heap entry sequence {seq} popped twice; sequence "
                f"numbers must come from the simulator's single counter"
            )
        self._seen_seqs.add(seq)
        if not isinstance(item, Event) and not callable(item):
            raise SanitizerError(
                f"heap entry item {item!r} is neither an Event nor a "
                f"callable"
            )

    def _check_fired(self, events: list[Event]) -> None:
        """Fired events must keep an empty callback slot forever."""
        for event in events:
            if event._callbacks is not None:
                raise SanitizerError(
                    "callbacks were attached to an already-fired event "
                    "by direct mutation; late waiters must use "
                    "Event.add_callback (which schedules a fresh queue "
                    "entry) or Simulator.call_later"
                )

    # -- the checked run loop --------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Identical pop order and dispatch to :meth:`Simulator.run`,
        with each entry validated as it is popped."""
        queue = self._queue
        while queue:
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            if when < self._now - 1e-9:
                raise SanitizerError(
                    f"time moved backwards: entry at {when} popped with "
                    f"the clock at {self._now}"
                )
            self._now = when
            while queue and queue[0][0] == when:
                entry = queue[0]
                self._check_entry(entry)
                item = heappop(queue)[2]
                self.entries_checked += 1
                if isinstance(item, Event):
                    if item.fired:
                        raise SanitizerError(
                            f"{type(item).__name__} fired twice; events "
                            f"are one-shot"
                        )
                    if not item.triggered:
                        raise SanitizerError(
                            f"{type(item).__name__} reached the queue "
                            f"without being triggered"
                        )
                    item._fire()
                    if item._callbacks is not None:
                        raise SanitizerError(
                            "event callback slot non-empty immediately "
                            "after firing; _fire must clear it and "
                            "late waiters must schedule fresh entries"
                        )
                    self._batch_fired.append(item)
                else:
                    item()
            self._check_fired(self._batch_fired)
            self._fired_events.extend(self._batch_fired)
            del self._batch_fired[:]
        if until is not None:
            self._now = max(self._now, until)

    # -- end-of-run audit ------------------------------------------------------

    def finish(self) -> None:
        """Audit waiter queues once the driver has drained the run.

        Raises :class:`SanitizerError` naming every leak:  a
        :class:`Resource` with blocked acquirers, a :class:`Store` with
        undelivered items, or an arbiter with blocked requests.  Parked
        ``Store.get()`` waiters are deliberately *not* leaks — server
        loops legitimately end every run blocked on their next work
        item.
        """
        self._check_fired(self._batch_fired)
        self._check_fired(self._fired_events)
        leaks: list[str] = []
        for waitable in self._waitables:
            name = type(waitable).__name__
            waiting = getattr(waitable, "_waiting", None)
            if waiting:
                leaks.append(
                    f"{name} ended the run with {len(waiting)} blocked "
                    f"acquirer(s)"
                )
            items = getattr(waitable, "_items", None)
            if items:
                leaks.append(
                    f"{name} ended the run with {len(items)} "
                    f"undelivered item(s)"
                )
            blocked = getattr(waitable, "_blocked", None)
            if blocked:
                leaks.append(
                    f"{name} ended the run with {len(blocked)} blocked "
                    f"request(s)"
                )
            shared_queue = getattr(waitable, "_queue", None)
            if shared_queue:
                leaks.append(
                    f"{name} ended the run with {len(shared_queue)} "
                    f"undispatched request(s)"
                )
            queues = getattr(waitable, "_queues", None)
            if queues is not None:
                per_vf = (queues.values()
                          if hasattr(queues, "values") else queues)
                pending = sum(len(q) for q in per_vf)
                if pending:
                    leaks.append(
                        f"{name} ended the run with {pending} queued "
                        f"request(s)"
                    )
        if leaks:
            raise SanitizerError(
                "waiter-queue leak(s) at run end: " + "; ".join(leaks)
            )
