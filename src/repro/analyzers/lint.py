"""``repro-lint``: the determinism & hot-path static-analysis pass.

The engine walks Python files, runs every registered rule
(:mod:`repro.analyzers.rules`) whose scope matches each file, honors
per-line suppression comments and renders findings as text or JSON.

Run it as ``repro-lint src/``, ``python -m repro.analyzers src/`` or
programmatically via :func:`lint_paths`.  Exit status: 0 clean, 1 any
active finding (including suppressions missing a reason), 2 usage
errors.

Suppressions
------------
A finding is silenced by a comment **on the flagged line**::

    tracks = {e[1] for e in events}  # repro-lint: disable=DET003 -- feeds sorted() two lines down

The ``-- reason`` part is mandatory: a suppression without a written
reason does not silence anything — it is reported as its own finding,
so the acceptance bar "zero unexplained suppressions" is enforced by
the tool itself.  Several codes can share one comment
(``disable=DET003,DET004``).
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import AnalyzerError
from repro.analyzers.rules import RULES, Rule

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]

#: ``# repro-lint: disable=DET001,HOT001 -- reason`` (reason optional at
#: parse time; its absence becomes a finding).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+?)\s*(?:--\s*(.*\S))?\s*$"
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Which rules apply where.  Paths are matched by repo-relative
    posix suffix: ``sim/engine.py`` matches any file ending in it, and
    a pattern ending in ``/`` matches every file under that directory.
    """

    #: Modules whose classes must be slotted (HOT001).
    hot_path_modules: tuple[str, ...] = (
        "sim/engine.py",
        "sim/stats.py",
        "service/scheduler.py",
        "service/fleet.py",
        "service/request.py",
        "telemetry/",
        "federation/router.py",
        "workloads/population.py",
    )
    #: Files allowed to read the host clock (DET001 skips them).
    wallclock_allowlist: tuple[str, ...] = (
        "telemetry/profiler.py",
        "benchmarks/",
    )
    #: Modules holding strict ``from_dict`` deserializers (SPEC001).
    spec_modules: tuple[str, ...] = (
        "cluster/spec.py",
        "sweep/spec.py",
        "telemetry/analysis.py",
        "federation/spec.py",
        "workloads/population.py",
    )
    #: Modules whose objects cross the SweepRunner pickle boundary
    #: (PKL001).
    pickle_modules: tuple[str, ...] = (
        "cluster/spec.py",
        "cluster/result.py",
        "sweep/",
        "telemetry/core.py",
        "telemetry/analysis.py",
        "federation/dispatch.py",
    )
    #: Rule codes to run; empty means every registered rule.
    select: tuple[str, ...] = ()

    @staticmethod
    def matches(relpath: str, patterns: Sequence[str]) -> bool:
        """Suffix/directory matching described in the class docstring."""
        path = "/" + relpath.replace("\\", "/").lstrip("/")
        for pattern in patterns:
            if pattern.endswith("/"):
                if f"/{pattern}" in path + "/" or path.startswith(
                        "/" + pattern):
                    return True
            elif path.endswith("/" + pattern):
                return True
        return False

    def active_rules(self) -> list[Rule]:
        if not self.select:
            return [RULES[code] for code in sorted(RULES)]
        unknown = sorted(set(self.select) - set(RULES))
        if unknown:
            raise AnalyzerError(
                f"unknown rule code(s) {unknown}; known: {sorted(RULES)}"
            )
        return [RULES[code] for code in sorted(self.select)]


DEFAULT_CONFIG = LintConfig()


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, after suppression handling."""

    code: str
    path: str
    line: int
    col: int
    message: str
    #: True when a reasoned suppression comment silenced the finding.
    suppressed: bool = False
    suppression_reason: str | None = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _parse_suppressions(source: str) -> dict[int, tuple[set[str],
                                                        str | None]]:
    """``{line: (codes, reason)}`` for every suppression comment."""
    suppressions: dict[int, tuple[set[str], str | None]] = {}
    for index, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",")
                 if code.strip()}
        suppressions[index] = (codes, match.group(2))
    return suppressions


def lint_source(source: str, relpath: str,
                config: LintConfig = DEFAULT_CONFIG) -> list[Finding]:
    """Lint one module's source text; returns every finding, with
    suppressed ones carried (marked) so reporters can show them."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding(
            code="E999", path=relpath, line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            message=f"syntax error: {error.msg}",
        )]
    suppressions = _parse_suppressions(source)
    findings: list[Finding] = []
    for rule in config.active_rules():
        if rule.scope is not None and not rule.scope(relpath, config):
            continue
        for raw in rule.check(tree, relpath, config):
            suppression = suppressions.get(raw.line)
            if suppression is not None and rule.code in suppression[0]:
                codes, reason = suppression
                if reason:
                    findings.append(Finding(
                        code=rule.code, path=relpath, line=raw.line,
                        col=raw.col, message=raw.message,
                        suppressed=True, suppression_reason=reason,
                    ))
                    continue
                findings.append(Finding(
                    code=rule.code, path=relpath, line=raw.line,
                    col=raw.col,
                    message=(raw.message
                             + " [suppression ignored: missing "
                               "'-- reason']"),
                ))
                continue
            findings.append(Finding(
                code=rule.code, path=relpath, line=raw.line, col=raw.col,
                message=raw.message,
            ))
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _python_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise AnalyzerError(f"no such file or directory: {entry}")
    return files


def _relpath(path: Path, root: Path | None) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(paths: Iterable[str],
               config: LintConfig = DEFAULT_CONFIG,
               root: str | Path | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    ``root`` anchors the repo-relative paths used for rule scoping and
    reporting; it defaults to the current working directory.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for path in _python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, _relpath(path, root_path),
                                    config))
    return findings


# -- reporters -----------------------------------------------------------------


def render_text(findings: Sequence[Finding],
                show_suppressed: bool = False) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines: list[str] = []
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for finding in active:
        lines.append(f"{finding.location()}: {finding.code} "
                     f"{finding.message}")
    if show_suppressed:
        for finding in suppressed:
            lines.append(f"{finding.location()}: {finding.code} "
                         f"suppressed ({finding.suppression_reason}): "
                         f"{finding.message}")
    lines.append(
        f"repro-lint: {len(active)} finding(s), "
        f"{len(suppressed)} suppressed with reasons"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Deterministic JSON document (stable key order, sorted findings)."""
    document = {
        "findings": [f.to_dict() for f in findings if not f.suppressed],
        "suppressed": [f.to_dict() for f in findings if f.suppressed],
        "summary": {
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _rule_table() -> str:
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}: {rule.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & hot-path static analysis for the "
                    "repro codebase: wall-clock reads, global "
                    "randomness, unsorted set iteration, id()-ordering, "
                    "unslotted hot-path classes, lenient from_dict, "
                    "closures crossing the pickle boundary.",
        epilog="Suppress a finding on its line with "
               "'# repro-lint: disable=CODE -- reason' (the reason is "
               "mandatory). The runtime counterpart is the simulation "
               "sanitizer: repro-experiment cluster/report --sanitize, "
               "or REPRO_SANITIZE=1.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list reasoned suppressions in the "
                             "text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--root", metavar="DIR",
                        help="repo root for relative paths and rule "
                             "scoping (default: cwd)")
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_rule_table())
        return 0
    config = DEFAULT_CONFIG
    if args.select:
        codes = tuple(code.strip() for code in args.select.split(",")
                      if code.strip())
        config = dataclasses.replace(config, select=codes)
    try:
        findings = lint_paths(args.paths or ["src"], config,
                              root=args.root)
    except (OSError, AnalyzerError) as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        sys.stdout.write(render_json(findings))
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
